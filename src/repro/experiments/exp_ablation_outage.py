"""Ablation — mobility outage across architectures (§2/§8 extension).

Quantifies the cost dimension the paper names but cannot measure:
how long communication to a moving endpoint is disrupted under

* **name-based routing** — updates flood hop-by-hop, stale routers
  blackhole or loop packets until convergence
  (:mod:`repro.forwarding.convergence`);
* **indirection routing** — one home-agent update: outage is a single
  registration RTT regardless of topology;
* **name resolution** — bounded by the binding TTL: correspondents may
  hold a stale address for up to TTL seconds
  (:mod:`repro.resolution.staleness`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..engine import Series, register
from ..forwarding import ConvergenceSimulator
from ..mobility import MobilityEvent
from ..resolution import TtlPoint, simulate_ttl
from ..topology import binary_tree_topology, chain_topology, clique_topology
from .context import World
from .report import banner, render_table

__all__ = ["OutageResult", "run", "format_result", "series"]


@dataclass
class OutageResult:
    """Outage metrics per topology plus the TTL sweep."""

    #: topology -> (mean outage, max outage) in per-hop delay units.
    name_based: Dict[str, Tuple[float, float]]
    #: Indirection: outage = one registration round trip (constant).
    indirection_outage_hops: float
    ttl_points: List[TtlPoint]


@register(
    "ablation-outage",
    description="§2/§8 mobility-outage comparison",
    section="§8",
    needs_world=True,
    tags=("ablation", "outage"),
)
def run(
    world: World,
    n: int = 31,
    events: int = 60,
    ttls_s: Tuple[float, ...] = (0.0, 30.0, 300.0, 3600.0),
    seed: int = 2014,
) -> OutageResult:
    """Measure convergence outage on toy topologies and TTL staleness
    on the busiest real user of the device workload."""
    topologies = {
        "chain": chain_topology(n),
        "clique": clique_topology(n),
        "binary-tree": binary_tree_topology(n),
    }
    name_based = {}
    for label, graph in topologies.items():
        simulator = ConvergenceSimulator(graph)
        name_based[label] = simulator.expected_outage(
            events, random.Random(seed)
        )

    # TTL staleness for the most mobile user in the workload.
    by_user: Dict[str, List[MobilityEvent]] = {}
    for event in world.device_events:
        by_user.setdefault(event.user_id, []).append(event)
    busiest = max(by_user, key=lambda u: len(by_user[u]))
    ttl_points = simulate_ttl(by_user[busiest], ttls_s=ttls_s, seed=seed)
    return OutageResult(
        name_based=name_based,
        indirection_outage_hops=2.0,  # one registration round trip
        ttl_points=ttl_points,
    )


def format_result(result: OutageResult) -> str:
    """Render the outage comparison."""
    rows = [
        [label, f"{mean:.2f}", f"{worst:.2f}"]
        for label, (mean, worst) in result.name_based.items()
    ]
    ttl_rows = [
        [
            f"{p.ttl_s:.0f}s",
            p.connections,
            f"{p.failure_rate * 100:.2f}%",
            f"{p.cache_hit_rate * 100:.0f}%",
            f"{p.mean_lookup_ms:.1f}ms",
        ]
        for p in result.ttl_points
    ]
    lines = [
        banner("Ablation -- mobility outage across architectures (§2/§8)"),
        "Name-based routing: outage until hop-by-hop convergence "
        "(per-hop delay units):",
        render_table(["topology", "mean outage", "max outage"], rows),
        f"\nIndirection routing: constant ~{result.indirection_outage_hops:.0f} "
        "hop-delays (one home-agent registration), topology-independent.",
        "\nName resolution: staleness bounded by the binding TTL "
        "(busiest NomadLog user, Poisson connections):",
        render_table(
            ["TTL", "connections", "stale failures", "cache hits",
             "mean lookup"],
            ttl_rows,
        ),
        "\nReading: name-based outage grows with topology diameter; "
        "indirection is constant but stretches every packet; resolution "
        "trades failure probability against lookup amortization via the "
        "TTL — the quantified version of the paper's §8 discussion.",
    ]
    return "\n".join(lines)

def series(result: OutageResult) -> list:
    """Tidy outage metrics: per-topology convergence plus the TTL sweep."""
    return [
        Series(
            "ablation_outage",
            ("topology", "mean_outage", "max_outage"),
            [
                [label, mean, worst]
                for label, (mean, worst) in sorted(result.name_based.items())
            ],
        ),
        Series(
            "ablation_outage_ttl",
            ("ttl_s", "connections", "failure_rate", "cache_hit_rate",
             "mean_lookup_ms"),
            [
                [p.ttl_s, p.connections, p.failure_rate, p.cache_hit_rate,
                 p.mean_lookup_ms]
                for p in result.ttl_points
            ],
        ),
    ]
