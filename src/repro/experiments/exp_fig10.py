"""Fig. 10 — network distance from the dominant ("home") location.

The indirection-routing stretch proxy of §6.3.2: for every (dominant
AS, visited AS) pair in the trace, the iPlane-predicted one-way delay
and AS hop count — answered for only ~5% of pairs because of iPlane's
coverage — plus the topology-based lower bound on the AS hop count.
Headlines: median predicted delay ~50 ms; median shortest physical AS
path 2, "suggesting that mobile users typically wander two or more
ASes away from the home AS".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..engine import Series, register
from ..mobility import day_stats, percentile
from .context import World
from .report import banner, render_cdf_summary

__all__ = ["Fig10Result", "run", "format_result", "series"]


@dataclass
class Fig10Result:
    """Predicted delays, predicted hops, and physical lower bounds."""

    total_pairs: int
    answered_pairs: int
    delays_ms: List[float]
    predicted_hops: List[int]
    physical_hops: List[int]

    def answer_rate(self) -> float:
        return self.answered_pairs / self.total_pairs if self.total_pairs else 0.0

    def median_delay(self) -> float:
        return percentile(self.delays_ms, 0.5)

    def median_predicted_hops(self) -> float:
        return percentile(self.predicted_hops, 0.5)

    def median_physical_hops(self) -> float:
        return percentile(self.physical_hops, 0.5)


@register(
    "fig10",
    description="Fig. 10: displacement from home",
    section="§6.3.2",
    needs_world=True,
    tags=("figure", "device-mobility", "indirection"),
)
def run(world: World) -> Fig10Result:
    """Predict home-to-current distances for every user-day pair."""
    predictor = world.iplane
    delays: List[float] = []
    predicted_hops: List[int] = []
    physical: List[int] = []
    total = answered = 0
    physical_cache = {}
    for user_day in world.workload.user_days:
        stats = day_stats(user_day)
        home = stats.dominant_asn
        for asn in stats.hours_by_asn:
            if asn == home:
                continue
            total += 1
            prediction = predictor.predict_as(home, asn)
            if prediction is not None:
                answered += 1
                delays.append(prediction.latency_ms)
                predicted_hops.append(prediction.as_hops)
            key = (home, asn)
            if key not in physical_cache:
                physical_cache[key] = predictor.shortest_physical_as_hops(
                    home, asn
                )
            if physical_cache[key] is not None:
                physical.append(physical_cache[key])
    return Fig10Result(
        total_pairs=total,
        answered_pairs=answered,
        delays_ms=delays,
        predicted_hops=predicted_hops,
        physical_hops=physical,
    )


def format_result(result: Fig10Result) -> str:
    """Render the Fig. 10 summary."""
    lines = [banner("Fig. 10 -- displacement from the dominant location")]
    lines.append(
        f"iPlane answer rate (paper: ~5%): {result.answer_rate() * 100:.1f}% "
        f"({result.answered_pairs}/{result.total_pairs} pairs)"
    )
    lines.append(render_cdf_summary("one-way delay (ms)", result.delays_ms))
    lines.append(
        f"median delay (paper: ~50 ms): {result.median_delay():.1f} ms"
    )
    lines.append(
        f"median predicted AS hops (paper: 4): "
        f"{result.median_predicted_hops():.1f}"
    )
    lines.append(
        f"median shortest physical AS path (paper: 2): "
        f"{result.median_physical_hops():.1f}"
    )
    return "\n".join(lines)


def series(result: Fig10Result) -> List[Series]:
    """The delay/hop samples behind Fig. 10 (two files, as measured)."""
    return [
        Series(
            "fig10_delays",
            ("delay_ms", "predicted_as_hops"),
            list(zip(result.delays_ms, result.predicted_hops)),
        ),
        Series(
            "fig10_physical_hops",
            ("physical_as_hops",),
            [[h] for h in result.physical_hops],
        ),
    ]
