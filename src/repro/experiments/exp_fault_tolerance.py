"""Fault tolerance — graceful degradation across architectures (§8 gap).

The paper's §8 lists routing convergence delay and mobility-induced
outages among the metrics its empirical methodology could not evaluate.
This experiment measures them under explicit failure regimes, with
**one shared fault schedule** applied to every architecture:

* **name resolution** — resolver replicas suffer staggered outages; a
  retrying client (capped exponential backoff, failover to the
  next-nearest replica, degraded-mode cache serves) keeps resolving.
  Expected shape: availability rises monotonically with replica count,
  because each added replica can only shrink the all-replicas-down
  windows (they are nested by construction).
* **indirection routing** — the home agent crashes mid-run; without a
  backup the endpoint is unreachable for the whole outage, with a
  backup for only the failover delay. Expected shape: sharp
  degradation, bounded by failover.
* **name-based routing** — routing updates are flooded over a lossy
  control plane with per-router retransmit timers and exponential
  backoff. Expected shape: outage grows with the message-loss rate
  (and with topology diameter, as in the fault-free ablation).

All draws come from seeded :class:`random.Random` instances, and the
loss-rate sweep uses common random numbers, so the reported shapes are
deterministic properties of one run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import FaultToleranceEvaluator, MobilityTimeline
from ..engine import Series, register
from ..faults import (
    HOME_AGENT,
    LINK,
    REPLICA,
    ROUTER,
    DegradationReport,
    FaultEvent,
    FaultSchedule,
    MessageLossModel,
    RetryPolicy,
)
from ..topology import chain_topology
from .report import banner, render_table

__all__ = ["FaultToleranceResult", "run", "format_result", "series"]

#: One-way ms to each replica site from the client region, nearest
#: first — the order the replica-count sweep grows the deployment in.
REPLICA_SITES: Dict[str, Dict[str, float]] = {
    "us-east": {"us": 12.0},
    "us-west": {"us": 28.0},
    "eu": {"us": 55.0},
    "asia": {"us": 90.0},
}

#: Endpoint moves mid-run — both during replica outages, so a thin
#: deployment serves stale degraded answers while a deep one resolves.
MOVES: Tuple[Tuple[float, int], ...] = ((25.0, 22), (80.0, 11))


@dataclass
class FaultToleranceResult:
    """Degradation metrics per architecture plus the fault sweeps."""

    #: replica count -> resolution report under the replica outages.
    replica_sweep: List[Tuple[int, DegradationReport]]
    #: Indirection with a backup agent (failover) and without.
    indirection_failover: DegradationReport
    indirection_no_backup: DegradationReport
    failover_delay: float
    home_agent_outage: Tuple[float, float]
    #: loss rate -> name-based report under lossy update floods.
    loss_sweep: List[Tuple[float, DegradationReport]]
    #: All three under the one shared schedule, comparable columns.
    shared: Dict[str, DegradationReport]


def _shared_schedule(
    primary_agent: int, ha_outage: Tuple[float, float],
    horizon: float, seed: int,
) -> FaultSchedule:
    """The one schedule every architecture faces.

    Replica outages are scripted and staggered: each deeper replica
    fails for a *shorter* window around the second move, so the
    all-down window shrinks — strictly — with every replica added.
    The home agent crashes mid-run; a transit link flaps periodically;
    background router crashes and link failures arrive via the Poisson
    and Weibull generators (off the probed path — ambience that keeps
    the schedule honest without entangling the three headline shapes).
    """
    rng = random.Random(f"{seed}:ambient")
    replica_events = [
        FaultEvent(20.0, REPLICA, "us-east", 15.0),
        FaultEvent(75.0, REPLICA, "us-east", 20.0),
        FaultEvent(78.0, REPLICA, "us-west", 10.0),
        FaultEvent(80.0, REPLICA, "eu", 4.0),
    ]
    scripted = FaultSchedule(
        replica_events
        + [FaultEvent(ha_outage[0], HOME_AGENT, primary_agent, ha_outage[1])]
    )
    link_flap = FaultSchedule.flap(
        LINK, (2, 3), period=30.0, down_fraction=0.1,
        horizon=horizon, first_down=55.0,
    )
    ambient = FaultSchedule.poisson(
        ROUTER, [27, 28, 29, 30], rate=1.0 / 60.0, horizon=horizon,
        duration=lambda r: 5.0 + 5.0 * r.random(), rng=rng,
    ).merge(
        FaultSchedule.weibull(
            LINK, [(25, 26), (26, 27)], shape=0.8, scale=50.0,
            horizon=horizon, duration=4.0, rng=rng,
        )
    )
    return scripted.merge(link_flap).merge(ambient)


@register(
    "fault-tolerance",
    description="§8 fault injection: graceful degradation across architectures",
    section="§8",
    needs_world=False,
    tags=("faults",),
)
def run(
    n: int = 31,
    horizon: float = 120.0,
    probe_step: float = 0.5,
    loss_rates: Tuple[float, ...] = (0.0, 0.15, 0.3, 0.45),
    replica_counts: Tuple[int, ...] = (1, 2, 3, 4),
    failover_delay: float = 6.0,
    seed: int = 2014,
) -> FaultToleranceResult:
    """Run the three fault regimes on the §5 chain of ``n`` routers."""
    graph = chain_topology(n)
    timeline = MobilityTimeline(initial=4, moves=MOVES)
    correspondent = 1
    primary = (n + 1) // 2
    backup = (n + 1) // 4
    ha_outage = (40.0, 45.0)  # (start, duration)
    retry = RetryPolicy(
        initial_timeout=0.1,
        backoff_factor=2.0,
        max_timeout=1.0,
        max_attempts=4,
        jitter_fraction=0.1,
    )
    # TTL below the probe cadence: every probe resolves fresh, so
    # availability is driven by outages, not cache-timing luck — while
    # the last answer stays cached for degraded-mode serving.
    ttl_s = 0.4 * probe_step

    faults = _shared_schedule(primary, ha_outage, horizon, seed)
    evaluator = FaultToleranceEvaluator(
        graph, faults, horizon, probe_step, seed
    )

    # 1. Resolution availability vs deployment depth.
    replica_sweep = []
    for count in replica_counts:
        sites = {s: REPLICA_SITES[s] for s in list(REPLICA_SITES)[:count]}
        report = evaluator.evaluate_resolution(
            timeline, sites, retry, ttl_s=ttl_s
        )
        replica_sweep.append((count, report))

    # 2. Indirection through the home-agent crash, with/without backup.
    indirection_failover = evaluator.evaluate_indirection(
        timeline, correspondent, primary, backup, failover_delay
    )
    indirection_no_backup = evaluator.evaluate_indirection(
        timeline, correspondent, primary
    )

    # 3. Name-based outage vs message-loss rate (common random numbers).
    loss_sweep = []
    for rate in loss_rates:
        report = evaluator.evaluate_name_based(
            timeline, correspondent, MessageLossModel(rate)
        )
        loss_sweep.append((rate, report))

    # 4. Headline comparison: all three, one schedule, one table.
    shared = evaluator.evaluate_all(
        timeline,
        correspondent,
        primary,
        REPLICA_SITES,
        retry,
        backup_agent=backup,
        failover_delay=failover_delay,
        loss=MessageLossModel(0.15),
        ttl_s=ttl_s,
    )
    return FaultToleranceResult(
        replica_sweep=replica_sweep,
        indirection_failover=indirection_failover,
        indirection_no_backup=indirection_no_backup,
        failover_delay=failover_delay,
        home_agent_outage=ha_outage,
        loss_sweep=loss_sweep,
        shared=shared,
    )


def format_result(result: FaultToleranceResult) -> str:
    """Render the degradation tables."""
    replica_rows = [
        [
            count,
            f"{r.availability * 100:.1f}%",
            f"{r.stale_fraction * 100:.1f}%",
            f"{r.mean_latency:.0f}ms",
            f"{r.max_outage():.1f}s",
        ]
        for count, r in result.replica_sweep
    ]
    ind_rows = [
        [
            label,
            f"{r.availability * 100:.1f}%",
            f"{r.max_outage():.1f}s",
            f"{r.stale_fraction * 100:.1f}%",
        ]
        for label, r in [
            (f"backup, failover {result.failover_delay:.0f}s",
             result.indirection_failover),
            ("no backup", result.indirection_no_backup),
        ]
    ]
    loss_rows = [
        [
            f"{rate * 100:.0f}%",
            f"{r.availability * 100:.1f}%",
            f"{sum(r.outage_durations):.1f}",
            f"{r.max_outage():.1f}",
            f"{r.outage_percentile(0.9):.1f}",
        ]
        for rate, r in result.loss_sweep
    ]
    shared_rows = [
        [
            name,
            f"{r.availability * 100:.1f}%",
            f"{r.stale_fraction * 100:.1f}%",
            f"{r.mean_outage():.1f}",
            f"{r.max_outage():.1f}",
        ]
        for name, r in result.shared.items()
    ]
    start, duration = result.home_agent_outage
    lines = [
        banner("Fault tolerance -- graceful degradation across "
               "architectures (§8 gap)"),
        "Name resolution under staggered replica outages "
        "(retry + failover + degraded cache serves):",
        render_table(
            ["replicas", "availability", "stale serves", "mean lookup",
             "max outage"],
            replica_rows,
        ),
        f"\nIndirection routing: home agent down at t={start:.0f}s "
        f"for {duration:.0f}s:",
        render_table(
            ["configuration", "availability", "max outage", "stale"],
            ind_rows,
        ),
        "\nName-based routing: update floods over a lossy control "
        "plane (retransmit + backoff):",
        render_table(
            ["msg loss", "availability", "total outage", "max outage",
             "p90 outage"],
            loss_rows,
        ),
        "\nAll three under the one shared fault schedule "
        "(replica outages + home-agent crash + link flap + 15% loss):",
        render_table(
            ["architecture", "availability", "stale", "mean outage",
             "max outage"],
            shared_rows,
        ),
        "\nReading: resolution degrades gracefully with replica count; "
        "indirection degrades sharply on home-agent failure until "
        "failover; name-based outage stretches with control-plane loss "
        "— the §8 discussion as measured failure-regime curves.",
    ]
    return "\n".join(lines)

def series(result: FaultToleranceResult) -> list:
    """Tidy degradation metrics for the sweeps and the shared schedule."""
    return [
        Series(
            "fault_tolerance_replicas",
            ("replicas", "availability", "stale_fraction", "mean_latency_ms",
             "max_outage_s"),
            [
                [count, r.availability, r.stale_fraction, r.mean_latency,
                 r.max_outage()]
                for count, r in result.replica_sweep
            ],
        ),
        Series(
            "fault_tolerance_loss",
            ("loss_rate", "availability", "total_outage_s", "max_outage_s",
             "p90_outage_s"),
            [
                [rate, r.availability, sum(r.outage_durations),
                 r.max_outage(), r.outage_percentile(0.9)]
                for rate, r in result.loss_sweep
            ],
        ),
        Series(
            "fault_tolerance_shared",
            ("architecture", "availability", "stale_fraction",
             "mean_outage_s", "max_outage_s"),
            [
                [name, r.availability, r.stale_fraction, r.mean_outage(),
                 r.max_outage()]
                for name, r in result.shared.items()
            ],
        ),
    ]
