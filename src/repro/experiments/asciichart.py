"""ASCII rendering of the paper's figures.

The benches run in a terminal with no plotting stack, so the CDFs of
Figs. 6/7/9/11(a) and the bar charts of Figs. 8/11(b,c)/12 are drawn as
text: close enough to eyeball the shapes against the paper.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["render_cdf_chart", "render_bar_chart"]

_MARKERS = "*o+x#@"


def _quantile(ordered: Sequence[float], q: float) -> float:
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def render_cdf_chart(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "",
) -> str:
    """Draw empirical CDFs of one or more samples on a shared axis.

    ``series`` maps a legend label to its raw sample values. With
    ``log_x`` the x axis is log10-scaled (matching the paper's Figs. 6
    and 7). Each series gets a distinct marker.
    """
    if not series:
        raise ValueError("need at least one series")
    cleaned = {
        label: sorted(v for v in values)
        for label, values in series.items()
        if values
    }
    if not cleaned:
        raise ValueError("all series are empty")

    all_values = [v for values in cleaned.values() for v in values]
    x_min, x_max = min(all_values), max(all_values)
    if log_x:
        floor = min((v for v in all_values if v > 0), default=1.0)
        x_min = max(x_min, floor)
    if x_max <= x_min:
        x_max = x_min + 1.0

    def x_to_col(value: float) -> int:
        if log_x:
            value = max(value, x_min)
            span = math.log10(x_max) - math.log10(x_min)
            frac = (math.log10(value) - math.log10(x_min)) / span
        else:
            frac = (value - x_min) / (x_max - x_min)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for index, (label, ordered) in enumerate(sorted(cleaned.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for row in range(height):
            # Row 0 is the top (CDF = 1.0).
            q = 1.0 - row / (height - 1) if height > 1 else 1.0
            value = _quantile(ordered, q)
            col = x_to_col(value)
            grid[row][col] = marker

    lines = []
    for row in range(height):
        q = 1.0 - row / (height - 1) if height > 1 else 1.0
        lines.append(f"{q * 100:5.0f}% |" + "".join(grid[row]))
    lines.append("       +" + "-" * width)
    left = f"{x_min:.3g}"
    right = f"{x_max:.3g}"
    pad = width - len(left) - len(right)
    lines.append("        " + left + " " * max(pad, 1) + right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(sorted(cleaned))
    )
    lines.append(f"        {legend}"
                 + (f"   [{x_label}{', log x' if log_x else ''}]" if x_label
                    else (" [log x]" if log_x else "")))
    return "\n".join(lines)


def render_bar_chart(
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
    scale_max: Optional[float] = None,
) -> str:
    """Horizontal bars, one per key, scaled to the maximum value."""
    if not values:
        raise ValueError("need at least one bar")
    peak = scale_max if scale_max is not None else max(values.values())
    peak = max(peak, 1e-12)
    label_width = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * int(round(value / peak * width))
        lines.append(
            f"{key.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)
