"""§8 robustness — perturbing the extent of device mobility.

The paper's limitations section argues that "our findings are unlikely
to change qualitatively if the extent of device or content mobility
were perturbed by large factors". This experiment tests that claim
instead of asserting it: the device workload's activity level is scaled
by large factors and the Fig. 8 evaluation re-run; the qualitative
finding holds if the per-router update-rate *profile* (who is affected
and in what proportion) stays put even as event volumes swing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core import DeviceUpdateCostEvaluator, pearson_correlation
from ..engine import Series, register
from ..mobility import MobilityWorkloadConfig, generate_workload
from .context import World
from .report import banner, render_table

__all__ = ["PerturbationResult", "run", "format_result", "series",
           "TIMEOUT_S"]

#: Per-experiment deadline (overrides ``run --timeout-s``): this sweep
#: re-generates the mobility workload and re-runs the Fig. 8 evaluation
#: at every perturbation scale — the longest multi-pass experiment — so
#: it gets the suite's widest deadline before the watchdog calls it hung.
TIMEOUT_S = 900


@dataclass
class PerturbationResult:
    """Fig. 8 outcomes at each mobility scale."""

    scales: Tuple[float, ...]
    #: scale -> router -> rate.
    rates: Dict[float, Dict[str, float]]
    #: scale -> total mobility events.
    events: Dict[float, int]
    #: Pearson correlation of the per-router profile vs scale 1.0.
    profile_correlation: Dict[float, float]


@register(
    "perturbation",
    description="§8 robustness: mobility scaled by large factors",
    section="§8",
    needs_world=True,
    tags=("robustness", "device-mobility"),
)
def run(
    world: World, scales: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
) -> PerturbationResult:
    """Re-run Fig. 8 with the workload's mobility scaled by ``scales``."""
    if 1.0 not in scales:
        raise ValueError("scales must include the calibrated 1.0 baseline")
    evaluator = DeviceUpdateCostEvaluator(world.routeviews, world.oracle)
    rates: Dict[float, Dict[str, float]] = {}
    events: Dict[float, int] = {}
    for scale in scales:
        workload = generate_workload(
            world.topology,
            MobilityWorkloadConfig(
                num_users=world.scale.num_users,
                num_days=world.scale.device_days,
                seed=world.scale.seed,
                mobility_scale=scale,
            ),
        )
        columns = workload.as_columns()
        report = evaluator.evaluate(columns)
        rates[scale] = dict(report.rates)
        events[scale] = len(columns)

    routers = sorted(rates[1.0])
    baseline = [rates[1.0][r] for r in routers]
    correlation = {}
    for scale in scales:
        if scale == 1.0:
            correlation[scale] = 1.0
            continue
        correlation[scale] = pearson_correlation(
            baseline, [rates[scale][r] for r in routers]
        )
    return PerturbationResult(
        scales=tuple(scales),
        rates=rates,
        events=events,
        profile_correlation=correlation,
    )


def format_result(result: PerturbationResult) -> str:
    """Render per-scale rates and profile correlations."""
    routers = sorted(result.rates[1.0])
    rows = []
    for router in routers:
        rows.append(
            [router]
            + [f"{result.rates[s][router] * 100:.2f}%" for s in result.scales]
        )
    header = ["router"] + [f"x{s:g}" for s in result.scales]
    lines = [
        banner("§8 robustness -- device mobility perturbed by large factors"),
        render_table(header, rows),
        "events: " + "  ".join(
            f"x{s:g}: {result.events[s]}" for s in result.scales
        ),
        "per-router profile correlation vs x1: " + "  ".join(
            f"x{s:g}: {result.profile_correlation[s]:.3f}"
            for s in result.scales
        ),
        "The paper's claim holds when the profile correlations stay near "
        "1: event volume moves, the architecture comparison does not.",
    ]
    return "\n".join(lines)


def series(result: PerturbationResult) -> list:
    """Per-(scale, router) rates plus the per-scale summary."""
    return [
        Series(
            "perturbation",
            ("mobility_scale", "router", "update_rate"),
            [
                [scale, router, result.rates[scale][router]]
                for scale in result.scales
                for router in sorted(result.rates[scale])
            ],
        ),
        Series(
            "perturbation_summary",
            ("mobility_scale", "events", "profile_correlation"),
            [
                [scale, result.events[scale],
                 result.profile_correlation[scale]]
                for scale in result.scales
            ],
        ),
    ]
