"""Fig. 9 — fraction of the day spent at the dominant location.

CDF across users and days of the time at the dominant IP address, IP
prefix, and AS. Headlines: over 40% of users spend ~70% of the day at
the dominant IP and ~85% at the dominant AS; users typically spend 30%
of a day away from the dominant IP (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..engine import Series, register
from ..mobility import cdf_points, dominant_residence_samples, percentile
from .context import World
from .asciichart import render_cdf_chart
from .report import banner, render_cdf_summary

__all__ = ["Fig9Result", "run", "format_result", "series"]


@dataclass
class Fig9Result:
    """Per-user-day dominant-residence fractions."""

    ip: List[float]
    prefix: List[float]
    asn: List[float]

    def fraction_above(self, series: str, threshold: float) -> float:
        values = getattr(self, series)
        return sum(1 for v in values if v > threshold) / len(values)

    def median_away_from_dominant_ip(self) -> float:
        return percentile([1 - v for v in self.ip], 0.5)

    def cdf(self, series: str) -> List[Tuple[float, float]]:
        return cdf_points(getattr(self, series))


@register(
    "fig9",
    description="Fig. 9: time at the dominant location",
    section="§6.3",
    needs_world=True,
    tags=("figure", "device-mobility"),
)
def run(world: World) -> Fig9Result:
    """Compute the Fig. 9 samples from the NomadLog workload."""
    ip, prefix, asn = dominant_residence_samples(world.workload.user_days)
    return Fig9Result(ip=ip, prefix=prefix, asn=asn)


def format_result(result: Fig9Result) -> str:
    """Render the Fig. 9 summary with the paper's headline numbers."""
    lines = [banner("Fig. 9 -- time at the dominant location per day")]
    lines.append(render_cdf_summary("dominant IP    ", result.ip))
    lines.append(render_cdf_summary("dominant prefix", result.prefix))
    lines.append(render_cdf_summary("dominant AS    ", result.asn))
    lines.append(
        f"users >70% of day at dominant IP (paper: ~40%+): "
        f"{result.fraction_above('ip', 0.70) * 100:.1f}%"
    )
    lines.append(
        f"users >85% of day at dominant AS (paper: ~40%+): "
        f"{result.fraction_above('asn', 0.85) * 100:.1f}%"
    )
    lines.append(
        f"median time away from dominant IP (paper: ~30%): "
        f"{result.median_away_from_dominant_ip() * 100:.1f}%"
    )
    lines.append(
        render_cdf_chart(
            {"IP": result.ip, "prefix": result.prefix, "AS": result.asn},
            x_label="fraction of day at dominant location",
        )
    )
    return "\n".join(lines)


def series(result: Fig9Result) -> List[Series]:
    """The raw per-user-day samples behind the Fig. 9 CDFs."""
    return [
        Series(
            "fig9",
            ("dominant_ip_fraction", "dominant_prefix_fraction",
             "dominant_as_fraction"),
            list(zip(result.ip, result.prefix, result.asn)),
        )
    ]
