"""Fig. 12 — FIB aggregateability of popular content.

For each RouteViews router, the ratio of the complete best-port
forwarding table over the popular domain set to its LPM-reduced table
(§3.3.2). Paper: between 2x and 16x across routers — diversely-peered
routers aggregate the least, single-feed peripheral routers the most.
The unpopular set aggregates hardly at all (no subdomains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core import router_aggregateability
from ..engine import Series, register
from .context import World
from .report import banner, render_table

__all__ = ["Fig12Result", "run", "format_result", "series"]


@dataclass
class Fig12Result:
    """Per-router aggregateability (popular set) and table sizes."""

    popular: Dict[str, float]
    table_sizes: Dict[str, Tuple[int, int]]  # (complete, lpm)
    unpopular: Dict[str, float]

    def min_popular(self) -> float:
        return min(self.popular.values())

    def max_popular(self) -> float:
        return max(self.popular.values())


@register(
    "fig12",
    description="Fig. 12: FIB aggregateability",
    section="§7.3",
    needs_world=True,
    tags=("figure", "content-mobility"),
)
def run(world: World) -> Fig12Result:
    """Compute aggregateability at hour 0 for both content sets."""
    popular: Dict[str, float] = {}
    sizes: Dict[str, Tuple[int, int]] = {}
    unpopular: Dict[str, float] = {}
    for router in world.routeviews:
        ratio, complete, lpm = router_aggregateability(
            router, world.oracle, world.popular_measurement
        )
        popular[router.name] = ratio
        sizes[router.name] = (len(complete), len(lpm))
        un_ratio, _, _ = router_aggregateability(
            router, world.oracle, world.unpopular_measurement
        )
        unpopular[router.name] = un_ratio
    return Fig12Result(popular=popular, table_sizes=sizes, unpopular=unpopular)


def format_result(result: Fig12Result) -> str:
    """Render the Fig. 12 bars."""
    rows = []
    for router, ratio in result.popular.items():
        complete, lpm = result.table_sizes[router]
        rows.append(
            [router, f"{ratio:.2f}x", complete, lpm,
             f"{result.unpopular[router]:.2f}x"]
        )
    table = render_table(
        ["router", "aggregateability", "complete", "LPM", "unpopular"],
        rows,
    )
    lines = [
        banner("Fig. 12 -- FIB aggregateability of popular content"),
        table,
        f"range (paper: 2x .. 16x): {result.min_popular():.1f}x .. "
        f"{result.max_popular():.1f}x; unpopular content aggregates "
        "hardly at all (paper §7.3).",
    ]
    return "\n".join(lines)


def series(result: Fig12Result) -> list:
    """The per-router aggregateability bars behind Fig. 12."""
    return [
        Series(
            "fig12",
            ("router", "aggregateability", "complete_entries",
             "lpm_entries", "unpopular_aggregateability"),
            [
                [
                    router,
                    ratio,
                    result.table_sizes[router][0],
                    result.table_sizes[router][1],
                    result.unpopular[router],
                ]
                for router, ratio in result.popular.items()
            ],
        )
    ]
