"""Fig. 7 — transitions across network locations per user per day.

Headlines: the median user transitions across roughly one AS and three
IP addresses a day; average AS transitions span ~0.25 to ~31.6 across
users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..engine import Series, register
from ..mobility import cdf_points, percentile, user_averages
from .context import World
from .asciichart import render_cdf_chart
from .report import banner, render_cdf_summary

__all__ = ["Fig7Result", "run", "format_result", "series"]


@dataclass
class Fig7Result:
    """Per-user averages of daily transitions."""

    ip_transitions: List[float]
    prefix_transitions: List[float]
    as_transitions: List[float]

    def median_ip_transitions(self) -> float:
        return percentile(self.ip_transitions, 0.5)

    def median_as_transitions(self) -> float:
        return percentile(self.as_transitions, 0.5)

    def as_transition_range(self) -> Tuple[float, float]:
        return (min(self.as_transitions), max(self.as_transitions))

    def cdf(self, series: str) -> List[Tuple[float, float]]:
        """CDF points for one of the three series."""
        return cdf_points(getattr(self, series))


@register(
    "fig7",
    description="Fig. 7: transitions per user-day",
    section="§6.1",
    needs_world=True,
    tags=("figure", "device-mobility"),
)
def run(world: World) -> Fig7Result:
    """Compute the Fig. 7 series from the NomadLog workload."""
    averages = user_averages(world.workload.user_days)
    return Fig7Result(
        ip_transitions=[u.avg_ip_transitions for u in averages],
        prefix_transitions=[u.avg_prefix_transitions for u in averages],
        as_transitions=[u.avg_as_transitions for u in averages],
    )


def format_result(result: Fig7Result) -> str:
    """Render the Fig. 7 summary with the paper's headline numbers."""
    lo, hi = result.as_transition_range()
    lines = [banner("Fig. 7 -- transitions across network locations per day")]
    lines.append(render_cdf_summary("IP transitions", result.ip_transitions))
    lines.append(render_cdf_summary("prefix trans. ", result.prefix_transitions))
    lines.append(render_cdf_summary("AS transitions", result.as_transitions))
    lines.append(
        f"median IP / AS transitions (paper: ~3 / ~1): "
        f"{result.median_ip_transitions():.2f} / "
        f"{result.median_as_transitions():.2f}"
    )
    lines.append(
        f"avg AS transitions range (paper: 0.25 .. 31.6): "
        f"{lo:.2f} .. {hi:.1f}"
    )
    lines.append(
        render_cdf_chart(
            {"IP": result.ip_transitions, "prefix": result.prefix_transitions,
             "AS": result.as_transitions},
            log_x=True,
            x_label="transitions/day",
        )
    )
    return "\n".join(lines)


def series(result: Fig7Result) -> List[Series]:
    """The raw per-user series behind the Fig. 7 CDFs."""
    return [
        Series(
            "fig7",
            ("ip_transitions", "prefix_transitions", "as_transitions"),
            list(zip(result.ip_transitions, result.prefix_transitions,
                     result.as_transitions)),
        )
    ]
