"""Forwarding-plane dynamics: routing convergence / mobility outage,
and an NDN-style stateful forwarding plane with a strategy layer."""

from .convergence import (
    ConvergenceSimulator,
    FaultyMobilityOutage,
    MobilityOutage,
)
from .stateful import (
    InterestStrategy,
    RetrievalResult,
    StatefulForwardingPlane,
)

__all__ = [
    "ConvergenceSimulator",
    "MobilityOutage",
    "FaultyMobilityOutage",
    "InterestStrategy",
    "RetrievalResult",
    "StatefulForwardingPlane",
]
