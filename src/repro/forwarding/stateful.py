"""A stateful (NDN-style) forwarding plane with a strategy layer.

The paper's findings "show ... the emerging importance of the strategy
layer in content-oriented architectures" (§1) and §8 cites the "case
for a stateful forwarding plane" [55]: with per-Interest state (a PIT)
a router can *retry alternative ports* when the best one fails, masking
mobility-induced staleness without any routing update.

This module implements the minimal faithful machinery on a router
graph:

* a per-router **content FIB**: name -> ranked list of output ports;
* **Interest** forwarding with a Pending Interest Table (duplicate
  suppression + reverse-path state) and hop/retransmission accounting;
* three **strategies** — ``BEST_ONLY`` (forward on the single best
  port, fail on a dead end), ``FLOOD`` (all ports at once), and
  ``ADAPTIVE`` (best first; on NACK/dead-end, the strategy layer tries
  the next-ranked port);
* a **mobility scenario**: content moves from one attachment router to
  another while only routers within a *freshness radius* of the new
  location have updated FIB entries — everyone else still points at
  the old location.

The metric is retrieval success and cost (total link traversals) during
that stale window, per strategy: exactly the "forwarding strategies can
buy robustness with traffic" trade-off of §3.3.3, in the data plane.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..topology import Graph

__all__ = [
    "InterestStrategy",
    "RetrievalResult",
    "StatefulForwardingPlane",
]

Node = Hashable


class InterestStrategy(enum.Enum):
    """What the strategy layer does with an Interest."""

    BEST_ONLY = "best-only"
    FLOOD = "flood"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class RetrievalResult:
    """Outcome of one Interest retrieval attempt."""

    success: bool
    #: Total link traversals spent (Interests, including retries).
    traversals: int
    #: Routers that held PIT state for this Interest.
    pit_entries: int


class StatefulForwardingPlane:
    """Name forwarding with PIT state over a router graph.

    The FIB is derived from shortest-path routing toward the content's
    *believed* location: fresh routers (within ``fresh_radius`` hops of
    the new attachment, i.e. those the routing update has reached) rank
    ports toward the new location first; stale routers rank ports
    toward the old location first. The ranked alternatives at every
    router are its neighbors ordered by shortest-path progress toward
    the believed location — what a real FIB with multiple next hops
    holds.
    """

    def __init__(self, graph: Graph, max_alternatives: int = 3):
        if max_alternatives < 1:
            raise ValueError("need at least one FIB alternative")
        self._graph = graph
        self._max_alts = max_alternatives
        self._nodes = sorted(graph.nodes(), key=repr)
        self._dist_cache: Dict[Node, Dict[Node, int]] = {}

    def _dist(self, target: Node) -> Dict[Node, int]:
        if target not in self._dist_cache:
            self._dist_cache[target] = self._graph.bfs_distances(target)
        return self._dist_cache[target]

    def ranked_ports(self, router: Node, believed: Node) -> List[Node]:
        """FIB alternatives at ``router`` toward ``believed`` location.

        Neighbors sorted by their distance to the believed location
        (ties broken deterministically), truncated to the configured
        number of alternatives. The router itself comes first when it
        *is* the believed location (local delivery).
        """
        dist = self._dist(believed)
        neighbors = sorted(
            self._graph.neighbors(router),
            key=lambda n: (dist.get(n, 1 << 30), repr(n)),
        )
        return neighbors[: self._max_alts]

    def _believed(self, router: Node, old: Node, new: Node,
                  fresh: Set[Node]) -> Node:
        return new if router in fresh else old

    def fresh_set(self, new_location: Node, fresh_radius: int) -> Set[Node]:
        """Routers the routing update has reached."""
        dist = self._dist(new_location)
        return {n for n, d in dist.items() if d <= fresh_radius}

    def retrieve(
        self,
        consumer: Node,
        old_location: Node,
        new_location: Node,
        fresh_radius: int,
        strategy: InterestStrategy,
        ttl: int = 32,
        cached_routers: Optional[Set[Node]] = None,
    ) -> RetrievalResult:
        """Send one Interest and try to reach the content.

        The content lives at ``new_location``; routers outside the
        freshness radius still believe ``old_location``. The PIT
        suppresses duplicate forwarding of the same Interest at a
        router; ``ttl`` bounds the total path length of any one branch.
        ``cached_routers`` (§8's on-path caching) satisfy the Interest
        immediately — caching helps exactly when a cached copy sits on
        the path the stale FIBs produce, which is why it "does not
        suffice to ensure reachability to at least one copy".
        """
        fresh = self.fresh_set(new_location, fresh_radius)
        caches = cached_routers or set()
        pit: Set[Node] = set()
        traversals = 0

        def forward(router: Node, depth: int) -> bool:
            nonlocal traversals
            if depth > ttl:
                return False
            if router == new_location or router in caches:
                return True
            if router in pit:
                return False  # duplicate Interest: PIT suppresses it
            pit.add(router)
            believed = self._believed(router, old_location, new_location,
                                      fresh)
            if believed == router:
                # Stale router thinks the content is local but it is
                # gone: NACK. The strategy layer upstream handles it.
                return False
            ports = self.ranked_ports(router, believed)
            if not ports:
                return False
            if strategy is InterestStrategy.BEST_ONLY:
                traversals += 1
                return forward(ports[0], depth + 1)
            if strategy is InterestStrategy.FLOOD:
                # Copies go out on every alternative simultaneously, so
                # every copy costs traffic even after one succeeds.
                delivered = False
                for port in ports:
                    traversals += 1
                    if forward(port, depth + 1):
                        delivered = True
                return delivered
            # ADAPTIVE: the strategy layer retries sequentially and
            # stops at the first success.
            for port in ports:
                traversals += 1
                if forward(port, depth + 1):
                    return True
            return False

        success = forward(consumer, 0)
        return RetrievalResult(
            success=success, traversals=traversals, pit_entries=len(pit)
        )

    def success_rate(
        self,
        strategy: InterestStrategy,
        fresh_radius: int,
        trials: int,
        rng: random.Random,
        cache_fraction: float = 0.0,
    ) -> Tuple[float, float]:
        """(success rate, mean traversals) over random scenarios.

        With ``cache_fraction`` > 0, that share of routers holds an
        on-path cached copy of the content (drawn fresh per trial).
        """
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError(f"bad cache fraction: {cache_fraction}")
        successes = 0
        total_traversals = 0
        for _ in range(trials):
            consumer, old, new = (
                rng.choice(self._nodes),
                rng.choice(self._nodes),
                rng.choice(self._nodes),
            )
            if old == new:
                successes += 1
                continue
            caches = {
                node for node in self._nodes if rng.random() < cache_fraction
            }
            result = self.retrieve(
                consumer, old, new, fresh_radius, strategy,
                cached_routers=caches,
            )
            successes += int(result.success)
            total_traversals += result.traversals
        return successes / trials, total_traversals / trials
