"""Routing convergence and mobility outage for name-based routing.

§2 of the paper: achieving location independence "purely at the network
layer without inducing significant stretch or long outage times upon
mobility events is nontrivial", and §8 lists routing convergence delay
among the metrics the empirical methodology could not evaluate. This
module evaluates it on the §5 toy setting: a shortest-path name-routing
network where, after an endpoint moves, the routing update propagates
hop-by-hop outward from the new attachment router with a fixed per-hop
delay. Until a router has processed the update it forwards on its old
entry — so packets can chase the endpoint's old location (a blackhole)
or even loop between stale and fresh routers.

:class:`ConvergenceSimulator` computes, per mobility event:

* **outage duration** at each source — how long packets from that
  source fail to reach the endpoint;
* **convergence time** — when the whole network is consistent;
* **delivery success** for probe packets injected during convergence.

For comparison, indirection's outage is a single home-agent update
(one RTT) and resolution's is bounded by the binding TTL
(:mod:`repro.resolution.staleness`) — which is exactly the paper's
qualitative argument made quantitative.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from .. import obs
from ..faults import LINK, ROUTER, FaultSchedule, MessageLossModel, RetryPolicy
from ..topology import Graph

__all__ = ["MobilityOutage", "FaultyMobilityOutage", "ConvergenceSimulator"]

Node = Hashable


def _array_mode() -> bool:
    """True when the vectorized probe engine should serve this call."""
    try:
        from ..workload import scalar_mode
    except ImportError:  # numpy-free environment: scalar only
        return False
    return not scalar_mode()


class _ConvArrays:
    """Array mirror of one simulator's graph: indices, adjacency, LUTs.

    Nodes are numbered in the simulator's deterministic ``_nodes``
    order. The dense adjacency matrix drives batched multi-source BFS
    (toy/intradomain graphs are small, so ``(S, n) @ (n, n)`` beats a
    per-source dict flood by orders of magnitude); per-target hop rows
    and next-hop columns are cached exactly like the scalar caches.
    """

    def __init__(self, sim: "ConvergenceSimulator"):
        from ..workload import require_numpy

        np = require_numpy()
        self._np = np
        self._sim = sim
        nodes = sim._nodes
        self.n = len(nodes)
        self.index: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        adj = np.zeros((self.n, self.n), dtype=np.uint8)
        for i, node in enumerate(nodes):
            for nbr in sim._graph.neighbors(node):
                adj[i, self.index[nbr]] = 1
        self.adj = adj
        self._hops: Dict[Node, "np.ndarray"] = {}
        self._nh_cols: Dict[Node, "np.ndarray"] = {}

    def hop_rows(self, targets) -> list:
        """Hop counts from each target to every node (-1 unreachable).

        All missing targets flood together: one boolean frontier matrix
        stepped by matmul — the vectorized multi-source BFS.
        """
        np = self._np
        missing = [t for t in targets if t not in self._hops]
        if missing:
            rows = np.full((len(missing), self.n), -1, dtype=np.int32)
            frontier = np.zeros((len(missing), self.n), dtype=bool)
            for s, t in enumerate(missing):
                frontier[s, self.index[t]] = True
            seen = frontier.copy()
            rows[frontier] = 0
            hops = 0
            while frontier.any():
                hops += 1
                nxt = (frontier.astype(np.uint8) @ self.adj) > 0
                nxt &= ~seen
                rows[nxt] = hops
                seen |= nxt
                frontier = nxt
            for s, t in enumerate(missing):
                self._hops[t] = rows[s]
        return [self._hops[t] for t in targets]

    def nh_col(self, target: Node) -> "np.ndarray":
        """Each node's next hop toward ``target``, as node indices."""
        col = self._nh_cols.get(target)
        if col is None:
            np, sim = self._np, self._sim
            col = np.array(
                [self.index[sim._nh(node)[target]] for node in sim._nodes],
                dtype=np.int64,
            )
            self._nh_cols[target] = col
        return col

#: Default retransmit timers for lossy update propagation: first retry
#: after one hop-delay, doubling, capped at 8 hop-delays.
DEFAULT_RETRANSMIT = RetryPolicy(
    initial_timeout=1.0, backoff_factor=2.0, max_timeout=8.0, max_attempts=12
)


@dataclass(frozen=True)
class MobilityOutage:
    """Outage metrics of one mobility event under name-based routing."""

    old_router: Node
    new_router: Node
    #: Time (in per-hop delay units) until every router has updated.
    convergence_time: float
    #: Per-source outage duration (0 for sources never disrupted).
    outage_by_source: Dict[Node, float]

    def max_outage(self) -> float:
        """The worst source's outage duration."""
        return max(self.outage_by_source.values(), default=0.0)

    def mean_outage(self) -> float:
        """Outage duration averaged over all sources."""
        if not self.outage_by_source:
            return 0.0
        return sum(self.outage_by_source.values()) / len(self.outage_by_source)


@dataclass(frozen=True)
class FaultyMobilityOutage(MobilityOutage):
    """Outage metrics of one mobility event under faults.

    Extends the fault-free record with the control-plane cost of the
    loss regime: how many update retransmissions the flood needed.
    """

    retransmissions: int = 0


class ConvergenceSimulator:
    """Hop-by-hop update propagation on a shortest-path name network."""

    def __init__(self, graph: Graph, per_hop_delay: float = 1.0):
        if per_hop_delay <= 0:
            raise ValueError("per-hop delay must be positive")
        self._graph = graph
        self._delay = per_hop_delay
        self._nodes = sorted(graph.nodes(), key=repr)
        self._next_hops: Dict[Node, Dict[Node, Node]] = {}
        self._conv_arrays: Optional[_ConvArrays] = None

    def _nh(self, router: Node) -> Dict[Node, Node]:
        if router not in self._next_hops:
            self._next_hops[router] = self._graph.next_hops_fast(router)
        return self._next_hops[router]

    def _arrays(self) -> _ConvArrays:
        if self._conv_arrays is None:
            self._conv_arrays = _ConvArrays(self)
        return self._conv_arrays

    def update_arrival_times(self, new_router: Node) -> Dict[Node, float]:
        """When each router learns of the endpoint's new attachment.

        The announcement floods outward from the new attachment router;
        a router at hop distance h processes it at ``h * per_hop_delay``.
        In array mode the flood is a multi-source BFS row (cached and
        shareable across every event with this attachment point).
        """
        if _array_mode():
            arrays = self._arrays()
            hops = arrays.hop_rows([new_router])[0]
            return {
                node: int(hops[i]) * self._delay
                for i, node in enumerate(self._nodes)
                if hops[i] >= 0
            }
        return {
            node: hops * self._delay
            for node, hops in self._graph.bfs_distances(new_router).items()
        }

    def forwarding_state_at(
        self, time: float, old_router: Node, new_router: Node
    ) -> Dict[Node, Node]:
        """Each router's next hop toward the endpoint at ``time``."""
        arrivals = self.update_arrival_times(new_router)
        state = {}
        for node in self._nodes:
            target = new_router if arrivals[node] <= time else old_router
            state[node] = self._nh(node)[target]
        return state

    def deliver(
        self, source: Node, time: float, old_router: Node, new_router: Node
    ) -> bool:
        """Does a packet injected at ``source``/``time`` reach the endpoint?

        The packet follows each router's instantaneous entry; it is
        delivered when it arrives at the router where the endpoint now
        lives, and lost if it revisits a router (loop) or strands at
        the old attachment.
        """
        state = self.forwarding_state_at(time, old_router, new_router)
        current = source
        visited = set()
        while True:
            if current == new_router:
                return True
            if current in visited:
                return False  # loop between stale and fresh routers
            visited.add(current)
            hop = state[current]
            if hop == current:
                # Local delivery attempted at a router the endpoint
                # left (the old attachment): blackhole.
                return False
            current = hop

    def simulate_event(
        self, old_router: Node, new_router: Node, probe_step: float = 0.25
    ) -> MobilityOutage:
        """Measure outage per source for one mobility event.

        Probes each source at ``probe_step`` granularity from the move
        until convergence; the outage is the span from the move to the
        last failed probe + step (0 if no probe ever fails).
        """
        if _array_mode():
            return self._simulate_event_array(
                old_router, new_router, probe_step
            )
        arrivals = self.update_arrival_times(new_router)
        convergence = max(arrivals.values())
        outage: Dict[Node, float] = {}
        for source in self._nodes:
            if source == new_router:
                outage[source] = 0.0
                continue
            last_failure: Optional[float] = None
            t = 0.0
            while t <= convergence + probe_step:
                if not self.deliver(source, t, old_router, new_router):
                    last_failure = t
                t += probe_step
            outage[source] = (
                0.0 if last_failure is None else last_failure + probe_step
            )
        return MobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
        )

    def _probe_grid(self, convergence: float, probe_step: float) -> list:
        """The probe instants, by the same accumulation the scalar loop
        uses — the grid must be float-identical, not ``arange``-close."""
        ts = []
        t = 0.0
        while t <= convergence + probe_step:
            ts.append(t)
            t += probe_step
        return ts

    def _simulate_event_array(
        self, old_router: Node, new_router: Node, probe_step: float
    ) -> MobilityOutage:
        """Array path of :meth:`simulate_event`: all (probe, source)
        cells at once.

        The forwarding state at probe time t is a functional graph
        F[t]; a probe from ``source`` succeeds iff iterating F[t]
        reaches the new attachment (a revisit means a stale/fresh loop,
        a self-loop a blackhole — exactly the scalar walk's failure
        modes). Reachability-to-new over all cells is one monotone
        fixpoint instead of n walks per probe instant.
        """
        from ..workload import require_numpy

        np = require_numpy()
        arrays = self._arrays()
        hops = arrays.hop_rows([new_router])[0]
        arr = np.where(
            hops >= 0, hops.astype(np.float64) * self._delay, np.inf
        )
        convergence = max(
            int(hops[i]) * self._delay
            for i in range(arrays.n)
            if hops[i] >= 0
        )
        ts = self._probe_grid(convergence, probe_step)
        tsv = np.array(ts, dtype=np.float64)
        nh_new = arrays.nh_col(new_router)
        nh_old = arrays.nh_col(old_router)
        updated = arr[None, :] <= tsv[:, None]
        F = np.where(updated, nh_new[None, :], nh_old[None, :])
        good = np.zeros((len(ts), arrays.n), dtype=bool)
        good[:, arrays.index[new_router]] = True
        while True:
            grown = good | np.take_along_axis(good, F, axis=1)
            if (grown == good).all():
                break
            good = grown
        failed = ~good
        ever = failed.any(axis=0)
        last = (len(ts) - 1) - np.argmax(failed[::-1, :], axis=0)
        out = np.where(ever, tsv[last] + probe_step, 0.0)
        out[arrays.index[new_router]] = 0.0
        outage = {
            node: float(out[i]) for i, node in enumerate(self._nodes)
        }
        return MobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
        )

    def expected_outage(
        self, events: int, rng: random.Random
    ) -> Tuple[float, float]:
        """(mean, max) outage over random mobility events.

        The endpoint draws always come first, in the exact scalar
        order, so the rng stream is mode-independent; in array mode the
        unique new attachments then flood together (one batched
        multi-source BFS) before the per-event probes run.
        """
        pairs = []
        for _ in range(events):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            if old == new:
                continue
            pairs.append((old, new))
        if pairs and _array_mode():
            with obs.span("convergence.batch.arrivals"):
                self._arrays().hop_rows(
                    sorted({new for _, new in pairs}, key=repr)
                )
            obs.incr("convergence.batch.events", len(pairs))
        total = 0.0
        worst = 0.0
        count = 0
        for old, new in pairs:
            result = self.simulate_event(old, new)
            total += result.mean_outage()
            worst = max(worst, result.max_outage())
            count += 1
        return (total / count if count else 0.0, worst)

    # -- fault-aware propagation (repro.faults) ------------------------

    def lossy_update_arrival_times(
        self,
        new_router: Node,
        loss: MessageLossModel,
        retransmit: RetryPolicy,
        rng: random.Random,
        faults: Optional[FaultSchedule] = None,
    ) -> Tuple[Dict[Node, float], int]:
        """Arrival times of the update flood under message loss/faults.

        Returns ``(arrival_times, retransmissions)``. Each directed
        edge's transmission count is pre-sampled in a deterministic
        node order with a fixed number of uniforms per edge, so sweeps
        over ``loss.loss_rate`` under the same seed use common random
        numbers — arrival times are then monotone in the loss rate.
        A failed attempt costs its retransmit timeout; the successful
        one costs the per-hop delay (plus ``loss.extra_delay``).
        Crashed routers and downed links defer the crossing until the
        fault schedule brings them back.
        """
        if (faults is None or faults.empty) and loss.lossless:
            return self.update_arrival_times(new_router), 0
        faults = faults or FaultSchedule.EMPTY
        edge_delay: Dict[Tuple[Node, Node], float] = {}
        retransmissions = 0
        for u in self._nodes:
            for v in sorted(self._graph.neighbors(u), key=repr):
                draws = loss.draw_uniforms(retransmit.max_attempts, rng)
                attempts = loss.attempts_needed(draws)
                retransmissions += attempts - 1
                edge_delay[(u, v)] = (
                    retransmit.backoff_penalty(attempts - 1)
                    + self._delay
                    + loss.extra_delay
                )

        arrivals: Dict[Node, float] = {}
        heap: list = [(0.0, repr(new_router), new_router)]
        while heap:
            t, _, node = heapq.heappop(heap)
            if node in arrivals:
                continue
            arrivals[node] = t
            for neighbor in self._graph.neighbors(node):
                if neighbor in arrivals:
                    continue
                start = t
                # A crashed sender, downed link, or crashed receiver
                # defers the crossing; iterate because coming back up
                # on one can land inside an outage of another.
                while True:
                    adjusted = faults.next_up_time(ROUTER, node, start)
                    adjusted = faults.next_up_time(
                        LINK, (node, neighbor), adjusted
                    )
                    adjusted = faults.next_up_time(ROUTER, neighbor, adjusted)
                    if adjusted == start:
                        break
                    start = adjusted
                candidate = start + edge_delay[(node, neighbor)]
                heapq.heappush(heap, (candidate, repr(neighbor), neighbor))
        return arrivals, retransmissions

    def deliver_under_faults(
        self,
        source: Node,
        time: float,
        old_router: Node,
        new_router: Node,
        arrivals: Dict[Node, float],
        faults: FaultSchedule,
    ) -> bool:
        """Fault-aware probe: stale entries AND down elements drop it."""
        current = source
        visited = set()
        while True:
            if faults.is_down(ROUTER, current, time):
                return False
            if current == new_router:
                return True
            if current in visited:
                return False
            visited.add(current)
            target = new_router if arrivals.get(
                current, float("inf")
            ) <= time else old_router
            hop = self._nh(current)[target]
            if hop == current:
                return False
            if faults.is_down(LINK, (current, hop), time):
                return False
            current = hop

    def simulate_event_under_faults(
        self,
        old_router: Node,
        new_router: Node,
        rng: random.Random,
        loss: Optional[MessageLossModel] = None,
        retransmit: RetryPolicy = DEFAULT_RETRANSMIT,
        faults: Optional[FaultSchedule] = None,
        probe_step: float = 0.25,
    ) -> FaultyMobilityOutage:
        """:meth:`simulate_event` under a loss model and fault schedule.

        With an empty schedule and a lossless model this delegates to
        the pristine fault-free path, so the results are bit-identical
        — the invariant ``tests/test_faults_identity.py`` locks in.
        """
        loss = loss or MessageLossModel()
        if (faults is None or faults.empty) and loss.lossless:
            base = self.simulate_event(old_router, new_router, probe_step)
            return FaultyMobilityOutage(
                old_router=base.old_router,
                new_router=base.new_router,
                convergence_time=base.convergence_time,
                outage_by_source=base.outage_by_source,
                retransmissions=0,
            )
        faults = faults or FaultSchedule.EMPTY
        arrivals, retransmissions = self.lossy_update_arrival_times(
            new_router, loss, retransmit, rng, faults
        )
        convergence = max(arrivals.values())
        if _array_mode():
            outage = self._probe_outages_under_faults_array(
                old_router, new_router, arrivals, faults,
                convergence, probe_step,
            )
            return FaultyMobilityOutage(
                old_router=old_router,
                new_router=new_router,
                convergence_time=convergence,
                outage_by_source=outage,
                retransmissions=retransmissions,
            )
        outage: Dict[Node, float] = {}
        for source in self._nodes:
            if source == new_router:
                outage[source] = 0.0
                continue
            last_failure: Optional[float] = None
            t = 0.0
            while t <= convergence + probe_step:
                if not self.deliver_under_faults(
                    source, t, old_router, new_router, arrivals, faults
                ):
                    last_failure = t
                t += probe_step
            outage[source] = (
                0.0 if last_failure is None else last_failure + probe_step
            )
        return FaultyMobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
            retransmissions=retransmissions,
        )

    def _probe_outages_under_faults_array(
        self,
        old_router: Node,
        new_router: Node,
        arrivals: Dict[Node, float],
        faults: FaultSchedule,
        convergence: float,
        probe_step: float,
    ) -> Dict[Node, float]:
        """Array path of the fault-aware probe phase.

        Fault state is time-varying, so each probe instant evaluates
        the schedule once per node (router up? outgoing link up?) and
        then resolves all sources with one reachability fixpoint —
        instead of re-walking the path from every source. The failure
        conditions and their outcomes match
        :meth:`deliver_under_faults` case for case: a down router kills
        a probe even at the new attachment, a self-loop is the old
        attachment's blackhole, a revisit is a stale/fresh loop.
        """
        from ..workload import require_numpy

        np = require_numpy()
        arrays = self._arrays()
        n = arrays.n
        nodes = self._nodes
        arr = np.full(n, np.inf)
        for node, when in arrivals.items():
            arr[arrays.index[node]] = when
        nh_new = arrays.nh_col(new_router)
        nh_old = arrays.nh_col(old_router)
        new_idx = arrays.index[new_router]
        self_idx = np.arange(n, dtype=np.int64)
        ts = self._probe_grid(convergence, probe_step)
        last = np.full(n, -1, dtype=np.int64)
        for ti, t in enumerate(ts):
            router_down = np.fromiter(
                (faults.is_down(ROUTER, node, t) for node in nodes),
                dtype=bool,
                count=n,
            )
            F = np.where(arr <= t, nh_new, nh_old)
            link_down = np.fromiter(
                (
                    faults.is_down(LINK, (node, nodes[F[i]]), t)
                    for i, node in enumerate(nodes)
                ),
                dtype=bool,
                count=n,
            )
            base = np.zeros(n, dtype=bool)
            base[new_idx] = not router_down[new_idx]
            eligible = ~router_down & (F != self_idx) & ~link_down
            good = base.copy()
            while True:
                grown = base | (eligible & good[F])
                if (grown == good).all():
                    break
                good = grown
            last[~good] = ti
        tsv = np.array(ts, dtype=np.float64)
        out = np.where(last >= 0, tsv[np.maximum(last, 0)] + probe_step, 0.0)
        out[new_idx] = 0.0
        return {node: float(out[i]) for i, node in enumerate(nodes)}

    def expected_outage_under_faults(
        self,
        events: int,
        rng: random.Random,
        loss: Optional[MessageLossModel] = None,
        retransmit: RetryPolicy = DEFAULT_RETRANSMIT,
        faults: Optional[FaultSchedule] = None,
    ) -> Tuple[float, float]:
        """(mean, max) outage over random mobility events under faults.

        Event endpoints are drawn from ``rng`` exactly as the pristine
        :meth:`expected_outage` draws them; per-event loss sampling uses
        an rng forked deterministically per event, so the mobility
        sequence is identical across loss rates (common random numbers).
        """
        loss = loss or MessageLossModel()
        if (faults is None or faults.empty) and loss.lossless:
            # Same rng stream as the pristine path — no per-event fork
            # draws — so the mobility sequence and results are identical.
            return self.expected_outage(events, rng)
        total = 0.0
        worst = 0.0
        count = 0
        for index in range(events):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            if old == new:
                continue
            event_rng = random.Random(f"{rng.randint(0, 2**31)}:{index}")
            result = self.simulate_event_under_faults(
                old, new, event_rng, loss, retransmit, faults
            )
            total += result.mean_outage()
            worst = max(worst, result.max_outage())
            count += 1
        return (total / count if count else 0.0, worst)
