"""Routing convergence and mobility outage for name-based routing.

§2 of the paper: achieving location independence "purely at the network
layer without inducing significant stretch or long outage times upon
mobility events is nontrivial", and §8 lists routing convergence delay
among the metrics the empirical methodology could not evaluate. This
module evaluates it on the §5 toy setting: a shortest-path name-routing
network where, after an endpoint moves, the routing update propagates
hop-by-hop outward from the new attachment router with a fixed per-hop
delay. Until a router has processed the update it forwards on its old
entry — so packets can chase the endpoint's old location (a blackhole)
or even loop between stale and fresh routers.

:class:`ConvergenceSimulator` computes, per mobility event:

* **outage duration** at each source — how long packets from that
  source fail to reach the endpoint;
* **convergence time** — when the whole network is consistent;
* **delivery success** for probe packets injected during convergence.

For comparison, indirection's outage is a single home-agent update
(one RTT) and resolution's is bounded by the binding TTL
(:mod:`repro.resolution.staleness`) — which is exactly the paper's
qualitative argument made quantitative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..topology import Graph

__all__ = ["MobilityOutage", "ConvergenceSimulator"]

Node = Hashable


@dataclass(frozen=True)
class MobilityOutage:
    """Outage metrics of one mobility event under name-based routing."""

    old_router: Node
    new_router: Node
    #: Time (in per-hop delay units) until every router has updated.
    convergence_time: float
    #: Per-source outage duration (0 for sources never disrupted).
    outage_by_source: Dict[Node, float]

    def max_outage(self) -> float:
        """The worst source's outage duration."""
        return max(self.outage_by_source.values(), default=0.0)

    def mean_outage(self) -> float:
        """Outage duration averaged over all sources."""
        if not self.outage_by_source:
            return 0.0
        return sum(self.outage_by_source.values()) / len(self.outage_by_source)


class ConvergenceSimulator:
    """Hop-by-hop update propagation on a shortest-path name network."""

    def __init__(self, graph: Graph, per_hop_delay: float = 1.0):
        if per_hop_delay <= 0:
            raise ValueError("per-hop delay must be positive")
        self._graph = graph
        self._delay = per_hop_delay
        self._nodes = sorted(graph.nodes(), key=repr)
        self._next_hops: Dict[Node, Dict[Node, Node]] = {}

    def _nh(self, router: Node) -> Dict[Node, Node]:
        if router not in self._next_hops:
            self._next_hops[router] = self._graph.next_hops_fast(router)
        return self._next_hops[router]

    def update_arrival_times(self, new_router: Node) -> Dict[Node, float]:
        """When each router learns of the endpoint's new attachment.

        The announcement floods outward from the new attachment router;
        a router at hop distance h processes it at ``h * per_hop_delay``.
        """
        return {
            node: hops * self._delay
            for node, hops in self._graph.bfs_distances(new_router).items()
        }

    def forwarding_state_at(
        self, time: float, old_router: Node, new_router: Node
    ) -> Dict[Node, Node]:
        """Each router's next hop toward the endpoint at ``time``."""
        arrivals = self.update_arrival_times(new_router)
        state = {}
        for node in self._nodes:
            target = new_router if arrivals[node] <= time else old_router
            state[node] = self._nh(node)[target]
        return state

    def deliver(
        self, source: Node, time: float, old_router: Node, new_router: Node
    ) -> bool:
        """Does a packet injected at ``source``/``time`` reach the endpoint?

        The packet follows each router's instantaneous entry; it is
        delivered when it arrives at the router where the endpoint now
        lives, and lost if it revisits a router (loop) or strands at
        the old attachment.
        """
        state = self.forwarding_state_at(time, old_router, new_router)
        current = source
        visited = set()
        while True:
            if current == new_router:
                return True
            if current in visited:
                return False  # loop between stale and fresh routers
            visited.add(current)
            hop = state[current]
            if hop == current:
                # Local delivery attempted at a router the endpoint
                # left (the old attachment): blackhole.
                return False
            current = hop

    def simulate_event(
        self, old_router: Node, new_router: Node, probe_step: float = 0.25
    ) -> MobilityOutage:
        """Measure outage per source for one mobility event.

        Probes each source at ``probe_step`` granularity from the move
        until convergence; the outage is the span from the move to the
        last failed probe + step (0 if no probe ever fails).
        """
        arrivals = self.update_arrival_times(new_router)
        convergence = max(arrivals.values())
        outage: Dict[Node, float] = {}
        for source in self._nodes:
            if source == new_router:
                outage[source] = 0.0
                continue
            last_failure: Optional[float] = None
            t = 0.0
            while t <= convergence + probe_step:
                if not self.deliver(source, t, old_router, new_router):
                    last_failure = t
                t += probe_step
            outage[source] = (
                0.0 if last_failure is None else last_failure + probe_step
            )
        return MobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
        )

    def expected_outage(
        self, events: int, rng: random.Random
    ) -> Tuple[float, float]:
        """(mean, max) outage over random mobility events."""
        total = 0.0
        worst = 0.0
        count = 0
        for _ in range(events):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            if old == new:
                continue
            result = self.simulate_event(old, new)
            total += result.mean_outage()
            worst = max(worst, result.max_outage())
            count += 1
        return (total / count if count else 0.0, worst)
