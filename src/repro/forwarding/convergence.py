"""Routing convergence and mobility outage for name-based routing.

§2 of the paper: achieving location independence "purely at the network
layer without inducing significant stretch or long outage times upon
mobility events is nontrivial", and §8 lists routing convergence delay
among the metrics the empirical methodology could not evaluate. This
module evaluates it on the §5 toy setting: a shortest-path name-routing
network where, after an endpoint moves, the routing update propagates
hop-by-hop outward from the new attachment router with a fixed per-hop
delay. Until a router has processed the update it forwards on its old
entry — so packets can chase the endpoint's old location (a blackhole)
or even loop between stale and fresh routers.

:class:`ConvergenceSimulator` computes, per mobility event:

* **outage duration** at each source — how long packets from that
  source fail to reach the endpoint;
* **convergence time** — when the whole network is consistent;
* **delivery success** for probe packets injected during convergence.

For comparison, indirection's outage is a single home-agent update
(one RTT) and resolution's is bounded by the binding TTL
(:mod:`repro.resolution.staleness`) — which is exactly the paper's
qualitative argument made quantitative.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..faults import LINK, ROUTER, FaultSchedule, MessageLossModel, RetryPolicy
from ..topology import Graph

__all__ = ["MobilityOutage", "FaultyMobilityOutage", "ConvergenceSimulator"]

Node = Hashable

#: Default retransmit timers for lossy update propagation: first retry
#: after one hop-delay, doubling, capped at 8 hop-delays.
DEFAULT_RETRANSMIT = RetryPolicy(
    initial_timeout=1.0, backoff_factor=2.0, max_timeout=8.0, max_attempts=12
)


@dataclass(frozen=True)
class MobilityOutage:
    """Outage metrics of one mobility event under name-based routing."""

    old_router: Node
    new_router: Node
    #: Time (in per-hop delay units) until every router has updated.
    convergence_time: float
    #: Per-source outage duration (0 for sources never disrupted).
    outage_by_source: Dict[Node, float]

    def max_outage(self) -> float:
        """The worst source's outage duration."""
        return max(self.outage_by_source.values(), default=0.0)

    def mean_outage(self) -> float:
        """Outage duration averaged over all sources."""
        if not self.outage_by_source:
            return 0.0
        return sum(self.outage_by_source.values()) / len(self.outage_by_source)


@dataclass(frozen=True)
class FaultyMobilityOutage(MobilityOutage):
    """Outage metrics of one mobility event under faults.

    Extends the fault-free record with the control-plane cost of the
    loss regime: how many update retransmissions the flood needed.
    """

    retransmissions: int = 0


class ConvergenceSimulator:
    """Hop-by-hop update propagation on a shortest-path name network."""

    def __init__(self, graph: Graph, per_hop_delay: float = 1.0):
        if per_hop_delay <= 0:
            raise ValueError("per-hop delay must be positive")
        self._graph = graph
        self._delay = per_hop_delay
        self._nodes = sorted(graph.nodes(), key=repr)
        self._next_hops: Dict[Node, Dict[Node, Node]] = {}

    def _nh(self, router: Node) -> Dict[Node, Node]:
        if router not in self._next_hops:
            self._next_hops[router] = self._graph.next_hops_fast(router)
        return self._next_hops[router]

    def update_arrival_times(self, new_router: Node) -> Dict[Node, float]:
        """When each router learns of the endpoint's new attachment.

        The announcement floods outward from the new attachment router;
        a router at hop distance h processes it at ``h * per_hop_delay``.
        """
        return {
            node: hops * self._delay
            for node, hops in self._graph.bfs_distances(new_router).items()
        }

    def forwarding_state_at(
        self, time: float, old_router: Node, new_router: Node
    ) -> Dict[Node, Node]:
        """Each router's next hop toward the endpoint at ``time``."""
        arrivals = self.update_arrival_times(new_router)
        state = {}
        for node in self._nodes:
            target = new_router if arrivals[node] <= time else old_router
            state[node] = self._nh(node)[target]
        return state

    def deliver(
        self, source: Node, time: float, old_router: Node, new_router: Node
    ) -> bool:
        """Does a packet injected at ``source``/``time`` reach the endpoint?

        The packet follows each router's instantaneous entry; it is
        delivered when it arrives at the router where the endpoint now
        lives, and lost if it revisits a router (loop) or strands at
        the old attachment.
        """
        state = self.forwarding_state_at(time, old_router, new_router)
        current = source
        visited = set()
        while True:
            if current == new_router:
                return True
            if current in visited:
                return False  # loop between stale and fresh routers
            visited.add(current)
            hop = state[current]
            if hop == current:
                # Local delivery attempted at a router the endpoint
                # left (the old attachment): blackhole.
                return False
            current = hop

    def simulate_event(
        self, old_router: Node, new_router: Node, probe_step: float = 0.25
    ) -> MobilityOutage:
        """Measure outage per source for one mobility event.

        Probes each source at ``probe_step`` granularity from the move
        until convergence; the outage is the span from the move to the
        last failed probe + step (0 if no probe ever fails).
        """
        arrivals = self.update_arrival_times(new_router)
        convergence = max(arrivals.values())
        outage: Dict[Node, float] = {}
        for source in self._nodes:
            if source == new_router:
                outage[source] = 0.0
                continue
            last_failure: Optional[float] = None
            t = 0.0
            while t <= convergence + probe_step:
                if not self.deliver(source, t, old_router, new_router):
                    last_failure = t
                t += probe_step
            outage[source] = (
                0.0 if last_failure is None else last_failure + probe_step
            )
        return MobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
        )

    def expected_outage(
        self, events: int, rng: random.Random
    ) -> Tuple[float, float]:
        """(mean, max) outage over random mobility events."""
        total = 0.0
        worst = 0.0
        count = 0
        for _ in range(events):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            if old == new:
                continue
            result = self.simulate_event(old, new)
            total += result.mean_outage()
            worst = max(worst, result.max_outage())
            count += 1
        return (total / count if count else 0.0, worst)

    # -- fault-aware propagation (repro.faults) ------------------------

    def lossy_update_arrival_times(
        self,
        new_router: Node,
        loss: MessageLossModel,
        retransmit: RetryPolicy,
        rng: random.Random,
        faults: Optional[FaultSchedule] = None,
    ) -> Tuple[Dict[Node, float], int]:
        """Arrival times of the update flood under message loss/faults.

        Returns ``(arrival_times, retransmissions)``. Each directed
        edge's transmission count is pre-sampled in a deterministic
        node order with a fixed number of uniforms per edge, so sweeps
        over ``loss.loss_rate`` under the same seed use common random
        numbers — arrival times are then monotone in the loss rate.
        A failed attempt costs its retransmit timeout; the successful
        one costs the per-hop delay (plus ``loss.extra_delay``).
        Crashed routers and downed links defer the crossing until the
        fault schedule brings them back.
        """
        if (faults is None or faults.empty) and loss.lossless:
            return self.update_arrival_times(new_router), 0
        faults = faults or FaultSchedule.EMPTY
        edge_delay: Dict[Tuple[Node, Node], float] = {}
        retransmissions = 0
        for u in self._nodes:
            for v in sorted(self._graph.neighbors(u), key=repr):
                draws = loss.draw_uniforms(retransmit.max_attempts, rng)
                attempts = loss.attempts_needed(draws)
                retransmissions += attempts - 1
                edge_delay[(u, v)] = (
                    retransmit.backoff_penalty(attempts - 1)
                    + self._delay
                    + loss.extra_delay
                )

        arrivals: Dict[Node, float] = {}
        heap: list = [(0.0, repr(new_router), new_router)]
        while heap:
            t, _, node = heapq.heappop(heap)
            if node in arrivals:
                continue
            arrivals[node] = t
            for neighbor in self._graph.neighbors(node):
                if neighbor in arrivals:
                    continue
                start = t
                # A crashed sender, downed link, or crashed receiver
                # defers the crossing; iterate because coming back up
                # on one can land inside an outage of another.
                while True:
                    adjusted = faults.next_up_time(ROUTER, node, start)
                    adjusted = faults.next_up_time(
                        LINK, (node, neighbor), adjusted
                    )
                    adjusted = faults.next_up_time(ROUTER, neighbor, adjusted)
                    if adjusted == start:
                        break
                    start = adjusted
                candidate = start + edge_delay[(node, neighbor)]
                heapq.heappush(heap, (candidate, repr(neighbor), neighbor))
        return arrivals, retransmissions

    def deliver_under_faults(
        self,
        source: Node,
        time: float,
        old_router: Node,
        new_router: Node,
        arrivals: Dict[Node, float],
        faults: FaultSchedule,
    ) -> bool:
        """Fault-aware probe: stale entries AND down elements drop it."""
        current = source
        visited = set()
        while True:
            if faults.is_down(ROUTER, current, time):
                return False
            if current == new_router:
                return True
            if current in visited:
                return False
            visited.add(current)
            target = new_router if arrivals.get(
                current, float("inf")
            ) <= time else old_router
            hop = self._nh(current)[target]
            if hop == current:
                return False
            if faults.is_down(LINK, (current, hop), time):
                return False
            current = hop

    def simulate_event_under_faults(
        self,
        old_router: Node,
        new_router: Node,
        rng: random.Random,
        loss: Optional[MessageLossModel] = None,
        retransmit: RetryPolicy = DEFAULT_RETRANSMIT,
        faults: Optional[FaultSchedule] = None,
        probe_step: float = 0.25,
    ) -> FaultyMobilityOutage:
        """:meth:`simulate_event` under a loss model and fault schedule.

        With an empty schedule and a lossless model this delegates to
        the pristine fault-free path, so the results are bit-identical
        — the invariant ``tests/test_faults_identity.py`` locks in.
        """
        loss = loss or MessageLossModel()
        if (faults is None or faults.empty) and loss.lossless:
            base = self.simulate_event(old_router, new_router, probe_step)
            return FaultyMobilityOutage(
                old_router=base.old_router,
                new_router=base.new_router,
                convergence_time=base.convergence_time,
                outage_by_source=base.outage_by_source,
                retransmissions=0,
            )
        faults = faults or FaultSchedule.EMPTY
        arrivals, retransmissions = self.lossy_update_arrival_times(
            new_router, loss, retransmit, rng, faults
        )
        convergence = max(arrivals.values())
        outage: Dict[Node, float] = {}
        for source in self._nodes:
            if source == new_router:
                outage[source] = 0.0
                continue
            last_failure: Optional[float] = None
            t = 0.0
            while t <= convergence + probe_step:
                if not self.deliver_under_faults(
                    source, t, old_router, new_router, arrivals, faults
                ):
                    last_failure = t
                t += probe_step
            outage[source] = (
                0.0 if last_failure is None else last_failure + probe_step
            )
        return FaultyMobilityOutage(
            old_router=old_router,
            new_router=new_router,
            convergence_time=convergence,
            outage_by_source=outage,
            retransmissions=retransmissions,
        )

    def expected_outage_under_faults(
        self,
        events: int,
        rng: random.Random,
        loss: Optional[MessageLossModel] = None,
        retransmit: RetryPolicy = DEFAULT_RETRANSMIT,
        faults: Optional[FaultSchedule] = None,
    ) -> Tuple[float, float]:
        """(mean, max) outage over random mobility events under faults.

        Event endpoints are drawn from ``rng`` exactly as the pristine
        :meth:`expected_outage` draws them; per-event loss sampling uses
        an rng forked deterministically per event, so the mobility
        sequence is identical across loss rates (common random numbers).
        """
        loss = loss or MessageLossModel()
        if (faults is None or faults.empty) and loss.lossless:
            # Same rng stream as the pristine path — no per-event fork
            # draws — so the mobility sequence and results are identical.
            return self.expected_outage(events, rng)
        total = 0.0
        worst = 0.0
        count = 0
        for index in range(events):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            if old == new:
                continue
            event_rng = random.Random(f"{rng.randint(0, 2**31)}:{index}")
            result = self.simulate_event_under_faults(
                old, new, event_rng, loss, retransmit, faults
            )
            total += result.mean_outage()
            worst = max(worst, result.max_outage())
            count += 1
        return (total / count if count else 0.0, worst)
