"""Shared order statistics used across the evaluation.

Medians, quantiles, and empirical CDFs are needed by the mobility
reductions (Figs. 6/7/9), the update-rate reports (Fig. 8), and the
fault-tolerance degradation metrics. They were historically hand-rolled
per module; this module is the single canonical implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["mean", "median", "percentile", "cdf_points"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def median(values: Sequence[float]) -> float:
    """The middle value (mean of the two middle values for even n)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, fraction <= value)`` step points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]
