"""Synthetic AS-level Internet topology.

The paper's interdomain methodology (§3.2, §6.2.1) consumes RIBs from
real RouteViews/RIPE routers. Those dumps are unavailable offline, so we
substitute a synthetic Internet: a tiered AS graph with explicit
customer/provider and peer relationships (the same structure Gao-style
inference recovers from real RIBs), per-AS geography for latency and
vantage placement, and per-AS address-space allocations so that every
IPv4 address used in the evaluation has a well-defined origin AS.

The generator produces three tiers:

* **Tier-1** transit backbones, fully peered with each other, spread
  over the major regions;
* **Tier-2** regional ISPs, customers of 1-3 tier-1s, peering within
  (and occasionally across) regions;
* **Stub** edge networks (enterprises, campuses, mobile carriers'
  regional arms), customers of 1-2 tier-2/tier-1 providers.

Geography is a set of named regions with planar coordinates; link
latency is distance-proportional, which is what the iPlane substitute
(:mod:`repro.latency.iplane`) integrates along AS paths.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..net import IPv4Address, IPv4Prefix, PrefixTrie

__all__ = [
    "Tier",
    "Relationship",
    "ASNode",
    "ASTopology",
    "ASTopologyConfig",
    "generate_as_topology",
    "REGIONS",
]


class Tier(enum.Enum):
    """Position of an AS in the provider hierarchy."""

    T1 = "tier1"
    T2 = "tier2"
    STUB = "stub"


class Relationship(enum.Enum):
    """Business relationship of a neighbor, from this AS's perspective."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


#: Region name -> planar coordinates, in units of ~1 ms of one-way
#: propagation delay per unit distance. Layout loosely follows world
#: geography so that e.g. Oregon--London is much farther than
#: Oregon--California.
REGIONS: Dict[str, Tuple[float, float]] = {
    "us-west": (0.0, 45.0),
    "us-central": (25.0, 43.0),
    "us-east": (45.0, 42.0),
    "sa": (65.0, -20.0),
    "eu-west": (105.0, 52.0),
    "eu-east": (130.0, 50.0),
    "africa": (115.0, -5.0),
    "indian-ocean": (150.0, -20.0),
    "asia-south": (165.0, 20.0),
    "asia-east": (195.0, 36.0),
    "oceania": (200.0, -30.0),
}

#: Regions that host tier-1 backbones.
_T1_REGIONS: Sequence[str] = (
    "us-west",
    "us-east",
    "us-central",
    "eu-west",
    "eu-east",
    "asia-east",
)


@dataclass
class ASNode:
    """One autonomous system."""

    asn: int
    tier: Tier
    region: str
    providers: Set[int] = field(default_factory=set)
    customers: Set[int] = field(default_factory=set)
    peers: Set[int] = field(default_factory=set)
    prefixes: List[IPv4Prefix] = field(default_factory=list)

    def neighbors(self) -> Set[int]:
        """All neighboring ASNs regardless of relationship."""
        return self.providers | self.customers | self.peers

    def degree(self) -> int:
        """Total number of AS-level neighbors."""
        return len(self.providers) + len(self.customers) + len(self.peers)


@dataclass
class ASTopologyConfig:
    """Knobs for :func:`generate_as_topology`.

    Defaults produce ~420 ASes — large enough for realistic next-hop
    diversity at well-connected vantage points while keeping full route
    computation fast.
    """

    t2_per_region: int = 5
    stubs_per_region: int = 30
    #: Range of tier-1 providers per tier-2. Real large ISPs buy
    #: transit from (or peer with) most tier-1s, which is what makes
    #:  AS-path lengths to different edge networks uniform — and
    #: forwarding next hops at distant routers stable under mobility.
    t2_provider_range: Tuple[int, int] = (6, 12)
    stub_multihome_prob: float = 0.35
    t2_peering_degree: int = 3
    cross_region_peer_prob: float = 0.15
    prefixes_per_stub: Tuple[int, int] = (1, 4)
    prefixes_per_t2: Tuple[int, int] = (4, 10)
    prefixes_per_t1: Tuple[int, int] = (8, 16)
    seed: int = 2014


class ASTopology:
    """The AS graph plus address-space ownership and latency model."""

    def __init__(self) -> None:
        self.ases: Dict[int, ASNode] = {}
        self._origin_trie: PrefixTrie[int] = PrefixTrie()
        self._region_jitter: Dict[int, Tuple[float, float]] = {}

    # -- construction ---------------------------------------------------

    def add_as(self, node: ASNode, jitter: Tuple[float, float] = (0.0, 0.0)) -> None:
        """Register an AS; ``jitter`` offsets it from its region center."""
        if node.asn in self.ases:
            raise ValueError(f"duplicate ASN {node.asn}")
        if node.region not in REGIONS:
            raise ValueError(f"unknown region {node.region!r}")
        self.ases[node.asn] = node
        self._region_jitter[node.asn] = jitter

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise ValueError("an AS cannot be its own provider")
        self.ases[customer].providers.add(provider)
        self.ases[provider].customers.add(customer)

    def add_peering(self, a: int, b: int) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise ValueError("an AS cannot peer with itself")
        self.ases[a].peers.add(b)
        self.ases[b].peers.add(a)

    def assign_prefix(self, asn: int, prefix: IPv4Prefix) -> None:
        """Allocate ``prefix`` to ``asn`` as originated address space."""
        existing = self._origin_trie.get(prefix)
        if existing is not None and existing != asn:
            raise ValueError(f"{prefix} already originated by AS{existing}")
        self.ases[asn].prefixes.append(prefix)
        self._origin_trie.insert(prefix, asn)

    # -- relationship queries --------------------------------------------

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """What ``neighbor`` is to ``asn`` (customer, peer, or provider)."""
        node = self.ases[asn]
        if neighbor in node.customers:
            return Relationship.CUSTOMER
        if neighbor in node.peers:
            return Relationship.PEER
        if neighbor in node.providers:
            return Relationship.PROVIDER
        raise KeyError(f"AS{neighbor} is not adjacent to AS{asn}")

    def are_adjacent(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` share any business relationship."""
        return b in self.ases[a].neighbors()

    def ases_in_region(
        self, region: str, tier: Optional[Tier] = None
    ) -> List[int]:
        """ASNs homed in ``region``, optionally filtered by tier."""
        return sorted(
            asn
            for asn, node in self.ases.items()
            if node.region == region and (tier is None or node.tier == tier)
        )

    def tier_of(self, asn: int) -> Tier:
        """The tier of ``asn``."""
        return self.ases[asn].tier

    # -- address space ---------------------------------------------------

    def origin_of_address(self, address: IPv4Address) -> Optional[int]:
        """The AS originating the longest prefix covering ``address``."""
        match = self._origin_trie.longest_match(address)
        return None if match is None else match[1]

    def origin_of_prefix(self, prefix: IPv4Prefix) -> Optional[int]:
        """The AS originating exactly ``prefix`` (None if unallocated)."""
        return self._origin_trie.get(prefix)

    def covering_prefix(self, address: IPv4Address) -> Optional[IPv4Prefix]:
        """The longest allocated prefix covering ``address``."""
        match = self._origin_trie.longest_match(address)
        return None if match is None else match[0]

    def all_prefixes(self) -> Iterator[Tuple[IPv4Prefix, int]]:
        """All allocated ``(prefix, origin ASN)`` pairs."""
        return self._origin_trie.items()

    # -- geography / latency ----------------------------------------------

    def position(self, asn: int) -> Tuple[float, float]:
        """Planar position of ``asn`` (region center plus jitter)."""
        node = self.ases[asn]
        cx, cy = REGIONS[node.region]
        jx, jy = self._region_jitter[asn]
        return (cx + jx, cy + jy)

    def link_latency_ms(self, a: int, b: int) -> float:
        """One-way latency of the AS link ``a -- b`` in milliseconds.

        Distance-proportional with a 2 ms per-link floor standing in
        for intra-PoP and router processing delay.
        """
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return 2.0 + math.hypot(ax - bx, ay - by) * 0.55

    def path_latency_ms(self, path: Sequence[int]) -> float:
        """One-way latency along an AS path (list of ASNs)."""
        return sum(
            self.link_latency_ms(u, v) for u, v in zip(path, path[1:])
        )

    # -- graph views ------------------------------------------------------

    def undirected_edges(self) -> Iterator[Tuple[int, int]]:
        """Each AS adjacency once, as an ``(a, b)`` pair with a < b."""
        for asn, node in self.ases.items():
            for nbr in node.neighbors():
                if asn < nbr:
                    yield asn, nbr

    def shortest_as_hops(self, source: int) -> Dict[int, int]:
        """Hop distances over the *physical* AS graph (policy-free).

        This is the §6.3.2 lower bound: the shortest AS path in the
        physical topology even if no policy-compliant route uses it.
        """
        from collections import deque

        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self.ases[u].neighbors()):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def __len__(self) -> int:
        return len(self.ases)


def _alloc_region_blocks() -> Dict[str, IPv4Prefix]:
    """Give each region a /8 so allocations never collide across regions."""
    blocks = {}
    for i, region in enumerate(sorted(REGIONS)):
        blocks[region] = IPv4Prefix((10 + i) << 24, 8)
    return blocks


def generate_as_topology(
    config: Optional[ASTopologyConfig] = None,
) -> ASTopology:
    """Build the synthetic Internet described in the module docstring."""
    cfg = config or ASTopologyConfig()
    rng = random.Random(cfg.seed)
    topo = ASTopology()
    next_asn = 100

    # Tier-1 backbones: two per backbone region, full peer mesh.
    t1s: List[int] = []
    for region in _T1_REGIONS:
        for _ in range(2):
            node = ASNode(asn=next_asn, tier=Tier.T1, region=region)
            topo.add_as(
                node,
                jitter=(rng.uniform(-3, 3), rng.uniform(-3, 3)),
            )
            t1s.append(next_asn)
            next_asn += 1
    for i, a in enumerate(t1s):
        for b in t1s[i + 1 :]:
            topo.add_peering(a, b)

    # Tier-2 regional ISPs.
    t2_by_region: Dict[str, List[int]] = {r: [] for r in REGIONS}
    for region in sorted(REGIONS):
        for _ in range(cfg.t2_per_region):
            node = ASNode(asn=next_asn, tier=Tier.T2, region=region)
            topo.add_as(
                node,
                jitter=(rng.uniform(-5, 5), rng.uniform(-5, 5)),
            )
            t2_by_region[region].append(next_asn)
            # Providers: a nearby tier-1 plus broad transit from most
            # of the tier-1 mesh (see t2_provider_range).
            in_region_t1 = [a for a in t1s if topo.ases[a].region == region]
            providers = {rng.choice(in_region_t1 if in_region_t1 else t1s)}
            lo, hi = cfg.t2_provider_range
            want = min(rng.randint(lo, hi), len(t1s))
            while len(providers) < want:
                providers.add(rng.choice(t1s))
            for p in providers:
                topo.add_customer_provider(next_asn, p)
            next_asn += 1

    # Tier-2 peering: within region, plus occasional cross-region links.
    all_t2 = [a for lst in t2_by_region.values() for a in lst]
    for region, members in t2_by_region.items():
        for a in members:
            others = [b for b in members if b != a]
            rng.shuffle(others)
            for b in others[: cfg.t2_peering_degree]:
                if not topo.are_adjacent(a, b):
                    topo.add_peering(a, b)
            if rng.random() < cfg.cross_region_peer_prob:
                b = rng.choice(all_t2)
                if b != a and not topo.are_adjacent(a, b):
                    topo.add_peering(a, b)

    # Stubs.
    for region in sorted(REGIONS):
        regional_t2 = t2_by_region[region]
        for _ in range(cfg.stubs_per_region):
            node = ASNode(asn=next_asn, tier=Tier.STUB, region=region)
            topo.add_as(
                node,
                jitter=(rng.uniform(-8, 8), rng.uniform(-8, 8)),
            )
            providers = {rng.choice(regional_t2)}
            if rng.random() < cfg.stub_multihome_prob:
                # Second provider: usually another regional T2, sometimes
                # a tier-1 (direct transit contract).
                pool = regional_t2 if rng.random() < 0.8 else t1s
                candidate = rng.choice(pool)
                if candidate not in providers:
                    providers.add(candidate)
            for p in providers:
                topo.add_customer_provider(next_asn, p)
            next_asn += 1

    # Address space: carve per-region /8 blocks into /16s, hand each AS
    # a tier-dependent number of /16s.
    blocks = _alloc_region_blocks()
    cursor: Dict[str, int] = {r: 0 for r in REGIONS}
    per_tier = {
        Tier.T1: cfg.prefixes_per_t1,
        Tier.T2: cfg.prefixes_per_t2,
        Tier.STUB: cfg.prefixes_per_stub,
    }
    for asn in sorted(topo.ases):
        node = topo.ases[asn]
        lo, hi = per_tier[node.tier]
        count = rng.randint(lo, hi)
        block = blocks[node.region]
        for _ in range(count):
            index = cursor[node.region]
            if index >= 256:
                break  # region block exhausted; extremely unlikely at defaults
            cursor[node.region] = index + 1
            prefix = IPv4Prefix(block.network | (index << 16), 16)
            topo.assign_prefix(asn, prefix)

    return topo
