"""Toy and random topology generators.

The §5 analytic model is stated for four toy topologies — chain, clique,
binary tree, and star — which these generators build with integer node
ids matching the paper's numbering (routers ``1..n``). Random generators
(ring, grid, Erdős–Rényi, preferential attachment) support the wider
test suite and ablation benches.
"""

from __future__ import annotations

import random
from typing import Optional

from .graph import Graph

__all__ = [
    "chain_topology",
    "clique_topology",
    "binary_tree_topology",
    "star_topology",
    "ring_topology",
    "grid_topology",
    "erdos_renyi_topology",
    "preferential_attachment_topology",
]


def _check_size(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise ValueError(f"topology needs at least {minimum} nodes, got {n}")


def chain_topology(n: int) -> Graph:
    """The chain of Fig. 5: routers ``1 -- 2 -- ... -- n``."""
    _check_size(n)
    g = Graph()
    g.add_node(1)
    for i in range(1, n):
        g.add_edge(i, i + 1)
    return g


def clique_topology(n: int) -> Graph:
    """The complete graph on routers ``1..n``."""
    _check_size(n)
    g = Graph()
    g.add_node(1)
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            g.add_edge(i, j)
    return g


def binary_tree_topology(n: int) -> Graph:
    """A complete-shaped binary tree: node ``i`` has children ``2i, 2i+1``.

    Nodes are ``1..n`` so the tree is "complete" in the heap sense; the
    root is 1.
    """
    _check_size(n)
    g = Graph()
    g.add_node(1)
    for i in range(2, n + 1):
        g.add_edge(i, i // 2)
    return g


def star_topology(n: int) -> Graph:
    """A star: hub router 0 connected to leaf routers ``1..n``.

    Matches the §5 star model where endpoints live at the n leaves and
    the hub carries all transit (hence the ``1/(n+1)`` update cost over
    the ``n + 1`` routers).
    """
    _check_size(n)
    g = Graph()
    g.add_node(0)
    for i in range(1, n + 1):
        g.add_edge(0, i)
    return g


def ring_topology(n: int) -> Graph:
    """A cycle on routers ``1..n`` (n >= 3)."""
    _check_size(n, minimum=3)
    g = chain_topology(n)
    g.add_edge(n, 1)
    return g


def grid_topology(rows: int, cols: int) -> Graph:
    """A rows x cols grid; nodes are ``(r, c)`` tuples."""
    _check_size(rows)
    _check_size(cols)
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_node((r, c))
            if r > 0:
                g.add_edge((r - 1, c), (r, c))
            if c > 0:
                g.add_edge((r, c - 1), (r, c))
    return g


def erdos_renyi_topology(
    n: int, p: float, rng: Optional[random.Random] = None, connect: bool = True
) -> Graph:
    """G(n, p) on nodes ``1..n``.

    With ``connect=True`` (default) a deterministic spanning chain is
    added first so the result is always connected — the evaluation
    assumes reachability.
    """
    _check_size(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability out of range: {p}")
    rng = rng or random.Random(0)
    g = chain_topology(n) if connect else Graph()
    for i in range(1, n + 1):
        g.add_node(i)
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            if not g.has_edge(i, j) and rng.random() < p:
                g.add_edge(i, j)
    return g


def preferential_attachment_topology(
    n: int, m: int = 2, rng: Optional[random.Random] = None
) -> Graph:
    """A Barabási–Albert-style graph on nodes ``1..n``.

    Each new node attaches to ``m`` existing nodes chosen with
    probability proportional to degree; used as a rough stand-in for
    Internet-like degree heterogeneity in sensitivity tests.
    """
    _check_size(n)
    if m < 1:
        raise ValueError(f"attachment count must be >= 1: {m}")
    rng = rng or random.Random(0)
    g = Graph()
    seed_size = min(n, m + 1)
    for i in range(1, seed_size + 1):
        for j in range(i + 1, seed_size + 1):
            g.add_edge(i, j)
    if seed_size == 1:
        g.add_node(1)
    # Repeated-endpoints list implements degree-proportional sampling.
    endpoints = []
    for u, v, _ in g.edges():
        endpoints.extend([u, v])
    for new in range(seed_size + 1, n + 1):
        targets = set()
        while len(targets) < min(m, new - 1):
            targets.add(rng.choice(endpoints) if endpoints else 1)
        for t in targets:
            g.add_edge(new, t)
            endpoints.extend([new, t])
    return g
