"""A small undirected graph type with the queries the evaluation needs.

The toy-topology analysis (§5) and the router-level displacement test
(§3.1) only need adjacency, shortest paths, and next-hop extraction, so
this module implements exactly that rather than pulling in a general
graph library: the structures stay transparent and deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Graph"]

Node = Hashable


class Graph:
    """An undirected graph with optional per-edge weights.

    Nodes are arbitrary hashable values. Edges carry a positive weight
    (default 1.0) used by Dijkstra-based queries; hop-count queries
    ignore weights.
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or re-weight) the undirected edge ``u -- v``."""
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive: {weight!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``u -- v``; raises KeyError if absent."""
        del self._adj[u][v]
        del self._adj[v][u]

    # -- inspection ---------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> Iterator[Node]:
        """All nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Each undirected edge once, as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if (v, u) not in seen:
                    seen.add((u, v))
                    yield u, v, w

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def neighbors(self, node: Node) -> List[Node]:
        """The neighbors of ``node``."""
        return list(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of neighbors of ``node``."""
        return len(self._adj[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if the edge ``u -- v`` exists."""
        return u in self._adj and v in self._adj[u]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of the edge ``u -- v``; raises KeyError if absent."""
        return self._adj[u][v]

    # -- shortest paths (hop count) ------------------------------------

    def bfs_distances(self, source: Node) -> Dict[Node, int]:
        """Hop-count distance from ``source`` to every reachable node."""
        if source not in self._adj:
            raise KeyError(f"unknown node: {source!r}")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def hop_distance(self, u: Node, v: Node) -> Optional[int]:
        """Hop-count distance between ``u`` and ``v`` (None if disconnected)."""
        return self.bfs_distances(u).get(v)

    def shortest_path_tree(self, source: Node) -> Dict[Node, Node]:
        """BFS predecessor map: ``tree[v]`` is v's parent towards source.

        The source itself is absent from the map. Ties are broken by
        sorted neighbor order so the tree is deterministic.
        """
        if source not in self._adj:
            raise KeyError(f"unknown node: {source!r}")
        parent: Dict[Node, Node] = {}
        visited = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adj[u], key=repr):
                if v not in visited:
                    visited.add(v)
                    parent[v] = u
                    queue.append(v)
        return parent

    def next_hops(self, router: Node) -> Dict[Node, Node]:
        """The shortest-path (hop count) next hop from ``router`` to each node.

        ``next_hops(r)[d]`` is the neighbor of ``r`` on a shortest path
        to ``d``; ``r`` maps to itself (local delivery). Ties are broken
        by sorted neighbor order, mirroring a deterministic FIB.
        """
        dist = self.bfs_distances(router)
        ordered_nbrs = sorted(self._adj[router], key=repr)
        nbr_dist = {nbr: self.bfs_distances(nbr) for nbr in ordered_nbrs}
        nh: Dict[Node, Node] = {router: router}
        for d in dist:
            if d == router:
                continue
            # Pick the deterministic first neighbor on a shortest path to d.
            for nbr in ordered_nbrs:
                if nbr_dist[nbr].get(d, float("inf")) == dist[d] - 1:
                    nh[d] = nbr
                    break
        return nh

    def next_hops_fast(self, router: Node) -> Dict[Node, Node]:
        """Same result contract as :meth:`next_hops`, in one BFS pass.

        Runs a single BFS from ``router`` and labels every node with the
        first-hop neighbor that discovered it, expanding neighbors in
        sorted order so the labelling matches a deterministic FIB.
        """
        if router not in self._adj:
            raise KeyError(f"unknown node: {router!r}")
        first_hop: Dict[Node, Node] = {router: router}
        dist = {router: 0}
        queue = deque()
        for nbr in sorted(self._adj[router], key=repr):
            dist[nbr] = 1
            first_hop[nbr] = nbr
            queue.append(nbr)
        while queue:
            u = queue.popleft()
            for v in sorted(self._adj[u], key=repr):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    first_hop[v] = first_hop[u]
                    queue.append(v)
        return first_hop

    # -- shortest paths (weighted) -------------------------------------

    def dijkstra(self, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        """Weighted distances and predecessor map from ``source``."""
        if source not in self._adj:
            raise KeyError(f"unknown node: {source!r}")
        dist: Dict[Node, float] = {source: 0.0}
        parent: Dict[Node, Node] = {}
        done = set()
        heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
        counter = 1
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v, w in self._adj[u].items():
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, counter, v))
                    counter += 1
        return dist, parent

    def weighted_distance(self, u: Node, v: Node) -> Optional[float]:
        """Weighted shortest-path distance (None if disconnected)."""
        dist, _ = self.dijkstra(u)
        return dist.get(v)

    def shortest_path(self, u: Node, v: Node) -> Optional[List[Node]]:
        """A weighted shortest path from ``u`` to ``v`` as a node list."""
        dist, parent = self.dijkstra(u)
        if v not in dist:
            return None
        path = [v]
        while path[-1] != u:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -- global properties ----------------------------------------------

    def is_connected(self) -> bool:
        """True if the graph is non-empty and one component."""
        if not self._adj:
            return False
        source = next(iter(self._adj))
        return len(self.bfs_distances(source)) == len(self._adj)

    def diameter(self) -> int:
        """Max hop-count distance between any node pair (connected graphs)."""
        if not self.is_connected():
            raise ValueError("diameter is undefined for disconnected graphs")
        best = 0
        for node in self._adj:
            best = max(best, max(self.bfs_distances(node).values()))
        return best

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = Graph()
        for node in keep:
            if node in self._adj:
                sub.add_node(node)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub
