"""Network topologies: toy graphs, intradomain networks, AS-level Internet."""

from .aslevel import (
    REGIONS,
    ASNode,
    ASTopology,
    ASTopologyConfig,
    Relationship,
    Tier,
    generate_as_topology,
)
from .generators import (
    binary_tree_topology,
    chain_topology,
    clique_topology,
    erdos_renyi_topology,
    grid_topology,
    preferential_attachment_topology,
    ring_topology,
    star_topology,
)
from .graph import Graph
from .intradomain import IntradomainNetwork, random_intradomain_network

__all__ = [
    "Graph",
    "chain_topology",
    "clique_topology",
    "binary_tree_topology",
    "star_topology",
    "ring_topology",
    "grid_topology",
    "erdos_renyi_topology",
    "preferential_attachment_topology",
    "ASNode",
    "ASTopology",
    "ASTopologyConfig",
    "Relationship",
    "Tier",
    "generate_as_topology",
    "REGIONS",
    "IntradomainNetwork",
    "random_intradomain_network",
]
