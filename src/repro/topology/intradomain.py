"""Intradomain (router-level) networks with attached address space.

This models the §3.1 setting: a shortest-path-routed network of routers,
each originating some IP prefixes (its attached subnets), possibly with
hierarchical allocations — a router may own a /16 while a different
router owns a more-specific /24 inside it, which is exactly the
structure that makes longest-prefix matching (and therefore
displacement on mobility) interesting.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..net import IPv4Address, IPv4Prefix, PrefixTrie
from .graph import Graph

__all__ = ["IntradomainNetwork", "random_intradomain_network"]

Router = Hashable


class IntradomainNetwork:
    """A router graph plus a prefix-to-router ownership map.

    Forwarding tables are derived from deterministic shortest-path
    routing: the FIB of router R maps each announced prefix to R's
    next hop toward the owning router (or to R itself when R owns the
    prefix — the "local port" of §5.1.2).
    """

    def __init__(self, graph: Graph, ownership: Dict[Router, List[IPv4Prefix]]):
        for router in ownership:
            if router not in graph:
                raise ValueError(f"owner {router!r} is not a router in the graph")
        self._graph = graph
        self._ownership = {r: list(ps) for r, ps in ownership.items()}
        self._origin: PrefixTrie[Router] = PrefixTrie()
        for router, prefixes in self._ownership.items():
            for prefix in prefixes:
                existing = self._origin.get(prefix)
                if existing is not None and existing != router:
                    raise ValueError(
                        f"{prefix} owned by both {existing!r} and {router!r}"
                    )
                self._origin.insert(prefix, router)
        self._fib_cache: Dict[Router, PrefixTrie[Router]] = {}

    @property
    def graph(self) -> Graph:
        """The underlying router graph."""
        return self._graph

    def routers(self) -> Iterator[Router]:
        """All routers."""
        return self._graph.nodes()

    def prefixes(self) -> Iterator[Tuple[IPv4Prefix, Router]]:
        """All announced ``(prefix, owner)`` pairs."""
        return self._origin.items()

    def owner_of_address(self, address: IPv4Address) -> Optional[Router]:
        """The router owning the longest prefix covering ``address``."""
        match = self._origin.longest_match(address)
        return None if match is None else match[1]

    def covering_prefix(self, address: IPv4Address) -> Optional[IPv4Prefix]:
        """The longest announced prefix covering ``address``."""
        match = self._origin.longest_match(address)
        return None if match is None else match[0]

    def fib(self, router: Router) -> PrefixTrie[Router]:
        """Router's FIB: announced prefix -> output port.

        The port is the next-hop router on the shortest path to the
        owner, or ``router`` itself for locally attached prefixes.
        FIBs are cached; they only depend on the static topology.
        """
        cached = self._fib_cache.get(router)
        if cached is not None:
            return cached
        next_hops = self._graph.next_hops_fast(router)
        trie: PrefixTrie[Router] = PrefixTrie()
        for prefix, owner in self._origin.items():
            port = next_hops.get(owner)
            if port is None:
                continue  # unreachable owner: no route installed
            trie.insert(prefix, port)
        self._fib_cache[router] = trie
        return trie

    def lookup_port(self, router: Router, address: IPv4Address) -> Optional[Router]:
        """The output port router uses for ``address`` (LPM over its FIB)."""
        match = self.fib(router).longest_match(address)
        return None if match is None else match[1]


def random_intradomain_network(
    num_routers: int = 24,
    base_block: Optional[IPv4Prefix] = None,
    specifics_per_router: Tuple[int, int] = (0, 3),
    rng: Optional[random.Random] = None,
    edge_prob: float = 0.12,
) -> IntradomainNetwork:
    """A random connected router network with hierarchical allocations.

    Every router owns one /16 out of ``base_block`` (default
    ``20.0.0.0/8``); additionally, a random number of /24 *specifics*
    inside other routers' /16s are delegated to it. The delegated
    specifics are what make mobility events displace endpoints with
    respect to remote routers.
    """
    from .generators import erdos_renyi_topology

    rng = rng or random.Random(7)
    block = base_block or IPv4Prefix.from_string("20.0.0.0/8")
    if block.length > 16:
        raise ValueError("base block must be /16 or shorter")
    graph = erdos_renyi_topology(num_routers, edge_prob, rng=rng)
    routers = list(range(1, num_routers + 1))
    sixteens = list(block.subnets(16))
    if len(sixteens) < num_routers:
        raise ValueError("base block too small for the router count")
    ownership: Dict[Router, List[IPv4Prefix]] = {
        r: [sixteens[i]] for i, r in enumerate(routers)
    }
    lo, hi = specifics_per_router
    for r in routers:
        for _ in range(rng.randint(lo, hi)):
            other = rng.choice(routers)
            if other == r:
                continue
            parent = ownership[other][0]
            sub24 = rng.randrange(256)
            specific = IPv4Prefix(parent.network | (sub24 << 8), 24)
            # Skip if this /24 was already delegated to someone.
            if any(specific in ps for ps in ownership.values()):
                continue
            ownership[r].append(specific)
    return IntradomainNetwork(graph, ownership)
