"""Content hosting: origin sites and CDN delegation (§7.1).

Two hosting models cover the behaviours the paper measured:

* :class:`OriginHosting` — the domain is served from a small, static
  set of addresses at one or two hosting providers, possibly behind a
  DNS load balancer that rotates which pool member is handed out.
  Locations "are chosen mainly for fault-tolerance or load balancing
  purposes rather than proximity to clients, so they rarely change."
* :class:`CDNHosting` — the name is CNAME-delegated to a CDN that
  serves it from per-region edge clusters: a stable set of *core*
  clusters near the domain's main audience plus *overflow* clusters
  the CDN's mapping system toggles in and out, with the active
  addresses inside each cluster rotating for load balancing.

Hosting providers and CDN points of presence are designated ASes of
the synthetic topology, so every content address has an origin AS and
projects onto router ports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..net import ContentName, IPv4Address
from ..topology import ASTopology, Tier
from .domains import DomainUniverse

__all__ = [
    "EdgeCluster",
    "CDNProvider",
    "OriginHosting",
    "CDNHosting",
    "HostingDirectory",
    "HostingConfig",
    "assign_hosting",
]

#: Regions hosting most origin datacenters.
_HOSTING_REGIONS = ("us-east", "us-west", "eu-west", "us-central", "asia-east")


@dataclass(frozen=True)
class EdgeCluster:
    """One CDN point of presence: an AS plus its address pool."""

    region: str
    asn: int
    pool: Tuple[IPv4Address, ...]

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError("an edge cluster needs a non-empty address pool")


@dataclass
class CDNProvider:
    """A CDN: a name and its global edge clusters."""

    name: str
    clusters: List[EdgeCluster]

    def clusters_in(self, regions: Sequence[str]) -> List[EdgeCluster]:
        """Clusters located in any of ``regions``."""
        wanted = set(regions)
        return [c for c in self.clusters if c.region in wanted]


@dataclass
class OriginHosting:
    """Origin-served content: static base addresses + optional LB pool."""

    base: Tuple[IPv4Address, ...]
    #: Extra pool the DNS load balancer rotates through (may be empty).
    lb_pool: Tuple[IPv4Address, ...]
    #: How many pool members are active at once.
    lb_active: int
    #: Probability per hour that the LB rotates its active members.
    lb_rotation_prob: float
    #: Probability per day that the origin relocates entirely.
    relocation_prob_per_day: float = 0.0

    def __post_init__(self) -> None:
        if not self.base:
            raise ValueError("origin hosting needs at least one base address")
        if self.lb_active > len(self.lb_pool):
            raise ValueError("lb_active exceeds the pool size")


@dataclass
class CDNHosting:
    """CDN-served content: core clusters + toggling overflow clusters."""

    provider: CDNProvider
    core_clusters: Tuple[EdgeCluster, ...]
    overflow_clusters: Tuple[EdgeCluster, ...]
    #: Addresses served per cluster at any time.
    addrs_per_cluster: int
    #: Probability per hour that some cluster rotates its active set.
    rotation_prob: float
    #: Probability per hour that an overflow cluster toggles in/out.
    remap_prob: float
    #: Probability per hour that a non-anchor *core* cluster toggles —
    #: "the address that is the closest to any given router rarely
    #: changes" (§7.2): rarely, not never. The first core cluster is
    #: the anchor and never toggles.
    core_remap_prob: float = 0.0

    def __post_init__(self) -> None:
        if not self.core_clusters:
            raise ValueError("CDN hosting needs at least one core cluster")


class HostingDirectory:
    """name -> hosting model for a whole domain universe."""

    def __init__(self) -> None:
        self._models: Dict[ContentName, object] = {}
        self.cdns: List[CDNProvider] = []

    def set_model(self, name: ContentName, model) -> None:
        """Register the hosting model for ``name``."""
        self._models[name] = model

    def model_for(self, name: ContentName):
        """The hosting model for ``name`` (KeyError if unknown)."""
        return self._models[name]

    def __contains__(self, name: ContentName) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def names(self):
        """All names with assigned hosting."""
        return self._models.keys()


@dataclass
class HostingConfig:
    """Knobs for :func:`assign_hosting`."""

    num_cdns: int = 2
    cluster_pool_size: int = 24
    addrs_per_cluster: int = 3
    #: Popular origin LB parameters.
    popular_lb_fraction: float = 0.65
    popular_lb_rotation: Tuple[float, float] = (0.03, 0.20)
    #: Unpopular origin LB parameters.
    unpopular_lb_fraction: float = 0.3
    unpopular_lb_rotation: Tuple[float, float] = (0.004, 0.02)
    #: CDN per-domain rotation/remap ranges (per hour).
    cdn_rotation: Tuple[float, float] = (0.05, 2.0)
    cdn_remap: Tuple[float, float] = (0.005, 0.075)
    cdn_core_remap: Tuple[float, float] = (0.001, 0.005)
    core_clusters_per_domain: int = 4
    overflow_clusters_per_domain: int = 4
    #: Popular origins occasionally switch hosting providers; the long
    #: tail "rarely changes" locations (§7.2).
    popular_relocation_prob_per_day: float = 0.004
    unpopular_relocation_prob_per_day: float = 0.0002
    seed: int = 2014


def _draw_addresses(
    rng: random.Random, topology: ASTopology, asn: int, count: int
) -> List[IPv4Address]:
    """``count`` distinct host addresses out of ``asn``'s space."""
    prefixes = topology.ases[asn].prefixes
    seen = set()
    out: List[IPv4Address] = []
    while len(out) < count:
        prefix = rng.choice(prefixes)
        host = rng.randrange(1, min(prefix.num_addresses(), 1 << 16))
        addr = prefix.address_at(host)
        if addr not in seen:
            seen.add(addr)
            out.append(addr)
    return out


def _build_cdns(
    rng: random.Random, topology: ASTopology, cfg: HostingConfig
) -> List[CDNProvider]:
    """Designate CDN PoP ASes: one stub per region per CDN."""
    cdns: List[CDNProvider] = []
    for c in range(cfg.num_cdns):
        clusters: List[EdgeCluster] = []
        for region in sorted(
            {node.region for node in topology.ases.values()}
        ):
            stubs = topology.ases_in_region(region, Tier.STUB)
            if not stubs:
                continue
            asn = stubs[(c * 7 + 3) % len(stubs)]
            pool = tuple(
                _draw_addresses(rng, topology, asn, cfg.cluster_pool_size)
            )
            clusters.append(EdgeCluster(region=region, asn=asn, pool=pool))
        cdns.append(CDNProvider(name=f"cdn{c}", clusters=clusters))
    return cdns


def _origin_model(
    rng: random.Random,
    topology: ASTopology,
    cfg: HostingConfig,
    popular: bool,
    home_asn: Optional[int] = None,
) -> OriginHosting:
    if home_asn is None:
        region = rng.choice(_HOSTING_REGIONS)
        stubs = topology.ases_in_region(region, Tier.STUB)
        home_asn = rng.choice(stubs)
    base_count = rng.randint(1, 3) if popular else rng.randint(1, 2)
    base = tuple(_draw_addresses(rng, topology, home_asn, base_count))
    lb_fraction = cfg.popular_lb_fraction if popular else cfg.unpopular_lb_fraction
    lo, hi = cfg.popular_lb_rotation if popular else cfg.unpopular_lb_rotation
    relocation = (
        cfg.popular_relocation_prob_per_day
        if popular
        else cfg.unpopular_relocation_prob_per_day
    )
    if rng.random() < lb_fraction:
        pool = tuple(_draw_addresses(rng, topology, home_asn, 6))
        return OriginHosting(
            base=base,
            lb_pool=pool,
            lb_active=2,
            lb_rotation_prob=rng.uniform(lo, hi),
            relocation_prob_per_day=relocation,
        )
    return OriginHosting(
        base=base,
        lb_pool=(),
        lb_active=0,
        lb_rotation_prob=0.0,
        relocation_prob_per_day=relocation,
    )


def _cdn_model(
    rng: random.Random,
    cdns: List[CDNProvider],
    cfg: HostingConfig,
    popular: bool = True,
) -> CDNHosting:
    provider = rng.choice(cdns)
    clusters = list(provider.clusters)
    rng.shuffle(clusters)
    if not popular:
        # An unpopular site on a CDN draws no traffic: the mapping
        # system pins it to one or two edges and almost never touches
        # it, so its measured footprint is nearly static.
        n_core = min(2, len(clusters))
        return CDNHosting(
            provider=provider,
            core_clusters=tuple(clusters[:n_core]),
            overflow_clusters=tuple(clusters[n_core : n_core + 1]),
            addrs_per_cluster=cfg.addrs_per_cluster,
            rotation_prob=rng.uniform(0.005, 0.04),
            remap_prob=rng.uniform(0.0002, 0.001),
            core_remap_prob=0.0,
        )
    n_core = min(cfg.core_clusters_per_domain, len(clusters))
    n_over = min(cfg.overflow_clusters_per_domain, len(clusters) - n_core)
    return CDNHosting(
        provider=provider,
        core_clusters=tuple(clusters[:n_core]),
        overflow_clusters=tuple(clusters[n_core : n_core + n_over]),
        addrs_per_cluster=cfg.addrs_per_cluster,
        rotation_prob=rng.uniform(*cfg.cdn_rotation),
        remap_prob=rng.uniform(*cfg.cdn_remap),
        core_remap_prob=rng.uniform(*cfg.cdn_core_remap),
    )


def assign_hosting(
    universe: DomainUniverse,
    topology: ASTopology,
    config: Optional[HostingConfig] = None,
) -> HostingDirectory:
    """Assign a hosting model to every name in ``universe``.

    Subdomains that are not CDN-delegated inherit their apex domain's
    origin infrastructure AS (the same web farm serves apex and
    subdomains), which is what gives routers the LPM-aggregateable
    structure of Fig. 12.
    """
    cfg = config or HostingConfig()
    rng = random.Random(cfg.seed)
    directory = HostingDirectory()
    directory.cdns = _build_cdns(rng, topology, cfg)

    for group in (universe.popular, universe.unpopular):
        for domain in group:
            apex_model = _origin_model(rng, topology, cfg, domain.popular)
            home_asn = topology.origin_of_address(apex_model.base[0])
            if domain.is_cdn(domain.apex):
                directory.set_model(
                    domain.apex,
                    _cdn_model(rng, directory.cdns, cfg, popular=domain.popular),
                )
            else:
                directory.set_model(domain.apex, apex_model)
            for sub in domain.subdomains:
                if domain.is_cdn(sub):
                    directory.set_model(
                        sub,
                        _cdn_model(rng, directory.cdns, cfg, popular=domain.popular),
                    )
                else:
                    # Same web farm as the apex: with high probability
                    # literally the same addresses (subsumable by LPM),
                    # otherwise a sibling host in the same AS.
                    if rng.random() < 0.7:
                        directory.set_model(sub, apex_model)
                    else:
                        directory.set_model(
                            sub,
                            _origin_model(
                                rng, topology, cfg, domain.popular, home_asn
                            ),
                        )
    return directory
