"""The content domain universe (§7.1).

The paper starts from two sets of content domain names:

* the **popular set** — the Alexa top-500 domains plus all their
  subdomains, 12,342 names in total (Alexa ranks websites, not
  subdomains, and it is precisely the bulky-content subdomains like
  ``graphics.nytimes.com`` that get CNAME-aliased to CDNs);
* the **unpopular set** — the least popular 500 domains (rank near one
  million) and their subdomains, which have "hardly any subdomains".

Alexa lists are not redistributable and the 2014 snapshot is gone, so
this module *generates* a structurally equivalent universe: 500 popular
domains with a heavy-tailed subdomain count calibrated to total
~12,342 names, 24.5% of popular (1.6% of unpopular) names delegated to
CDNs — the shares the paper measured — and 500 unpopular domains with
0-2 subdomains each.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net import ContentName

__all__ = [
    "ContentDomain",
    "DomainUniverse",
    "DomainUniverseConfig",
    "generate_domain_universe",
]

_TLDS = ("com", "com", "com", "net", "org", "io", "co")
_SYLLABLES = (
    "ba", "be", "bo", "ca", "ce", "co", "da", "de", "do", "fa", "fi",
    "ga", "go", "ha", "hi", "ka", "ke", "ko", "la", "le", "lo", "ma",
    "me", "mi", "mo", "na", "ne", "no", "pa", "pe", "po", "ra", "re",
    "ro", "sa", "se", "so", "ta", "te", "to", "va", "ve", "vo", "za",
)
_SUBDOMAIN_WORDS = (
    "www", "static", "img", "video", "cdn", "api", "news", "sports",
    "travel", "mail", "shop", "blog", "m", "media", "assets", "dl",
    "graphics", "live", "music", "play", "games", "docs", "help",
    "search", "maps", "beta", "dev", "edge", "origin", "data",
)


@dataclass(frozen=True)
class ContentDomain:
    """One enterprise domain with its subdomains.

    ``rank`` is the popularity rank (1 = most popular). ``names``
    includes the apex name itself plus every subdomain; per-name CDN
    delegation is recorded in ``cdn_delegated``.
    """

    apex: ContentName
    rank: int
    popular: bool
    subdomains: Tuple[ContentName, ...]
    cdn_delegated: Dict[ContentName, bool] = field(hash=False)

    def all_names(self) -> Tuple[ContentName, ...]:
        """Apex first, then all subdomains."""
        return (self.apex,) + self.subdomains

    def is_cdn(self, name: ContentName) -> bool:
        """True if ``name`` is CNAME-delegated to a CDN."""
        return self.cdn_delegated.get(name, False)

    def cdn_share(self) -> float:
        """Fraction of this domain's names delegated to CDNs."""
        names = self.all_names()
        return sum(1 for n in names if self.is_cdn(n)) / len(names)


@dataclass
class DomainUniverseConfig:
    """Knobs for :func:`generate_domain_universe`."""

    num_popular: int = 500
    num_unpopular: int = 500
    #: Target total names in the popular set (paper: 12,342).
    popular_total_names: int = 12342
    popular_cdn_share: float = 0.245
    unpopular_cdn_share: float = 0.016
    seed: int = 2014


class DomainUniverse:
    """The generated popular and unpopular domain sets."""

    def __init__(
        self, popular: List[ContentDomain], unpopular: List[ContentDomain]
    ):
        self.popular = popular
        self.unpopular = unpopular

    def popular_names(self) -> List[ContentName]:
        """All names (apexes and subdomains) in the popular set."""
        return [n for d in self.popular for n in d.all_names()]

    def unpopular_names(self) -> List[ContentName]:
        """All names in the unpopular set."""
        return [n for d in self.unpopular for n in d.all_names()]

    def domain_of(self, name: ContentName) -> Optional[ContentDomain]:
        """The enterprise domain a name belongs to (by apex ancestry)."""
        for group in (self.popular, self.unpopular):
            for domain in group:
                if name == domain.apex or name.is_strict_descendant_of(
                    domain.apex
                ):
                    return domain
        return None


def _make_apex(rng: random.Random, used: set) -> ContentName:
    while True:
        length = rng.randint(2, 4)
        label = "".join(rng.choice(_SYLLABLES) for _ in range(length))
        tld = rng.choice(_TLDS)
        name = ContentName.from_domain(f"{label}.{tld}")
        if name not in used:
            used.add(name)
            return name


def _subdomain_labels(rng: random.Random, count: int) -> List[str]:
    labels: List[str] = []
    pool = list(_SUBDOMAIN_WORDS)
    rng.shuffle(pool)
    labels.extend(pool[: min(count, len(pool))])
    i = 0
    while len(labels) < count:
        base = _SUBDOMAIN_WORDS[i % len(_SUBDOMAIN_WORDS)]
        labels.append(f"{base}{i // len(_SUBDOMAIN_WORDS) + 2}")
        i += 1
    return labels[:count]


def _heavy_tailed_counts(
    rng: random.Random, n: int, target_total: int
) -> List[int]:
    """Zipf-like subdomain counts for ``n`` domains summing ~target_total.

    Raw weights ``1/rank**0.85`` are scaled to the target; the heaviest
    domains get hundreds of subdomains (think yahoo.com), the tail gets
    a handful — matching how the paper's 500 Alexa domains expand to
    12,342 names.
    """
    weights = [1.0 / (rank ** 0.85) for rank in range(1, n + 1)]
    scale = target_total / sum(weights)
    counts = []
    for w in weights:
        base = w * scale
        jitter = rng.uniform(0.8, 1.2)
        counts.append(max(1, int(round(base * jitter))))
    return counts


def generate_domain_universe(
    config: Optional[DomainUniverseConfig] = None,
) -> DomainUniverse:
    """Generate the popular + unpopular domain universe."""
    cfg = config or DomainUniverseConfig()
    rng = random.Random(cfg.seed)
    used: set = set()

    popular: List[ContentDomain] = []
    sub_counts = _heavy_tailed_counts(
        rng, cfg.num_popular, max(cfg.popular_total_names - cfg.num_popular, 0)
    )
    for rank in range(1, cfg.num_popular + 1):
        apex = _make_apex(rng, used)
        count = sub_counts[rank - 1]
        subs = tuple(apex.child(lbl) for lbl in _subdomain_labels(rng, count))
        cdn_flags: Dict[ContentName, bool] = {apex: False}
        for sub in subs:
            cdn_flags[sub] = rng.random() < cfg.popular_cdn_share
        popular.append(
            ContentDomain(
                apex=apex,
                rank=rank,
                popular=True,
                subdomains=subs,
                cdn_delegated=cdn_flags,
            )
        )

    unpopular: List[ContentDomain] = []
    for i in range(cfg.num_unpopular):
        rank = 1_000_000 - cfg.num_unpopular + i + 1
        apex = _make_apex(rng, used)
        count = rng.choice((0, 0, 0, 1, 1, 2))
        subs = tuple(apex.child(lbl) for lbl in _subdomain_labels(rng, count))
        cdn_flags = {apex: rng.random() < cfg.unpopular_cdn_share}
        for sub in subs:
            cdn_flags[sub] = rng.random() < cfg.unpopular_cdn_share
        unpopular.append(
            ContentDomain(
                apex=apex,
                rank=rank,
                popular=False,
                subdomains=subs,
                cdn_delegated=cdn_flags,
            )
        )
    return DomainUniverse(popular, unpopular)
