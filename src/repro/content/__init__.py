"""Content naming, hosting, and mobility: the domain universe, CDN and
origin hosting models, and per-name address timelines."""

from .domains import (
    ContentDomain,
    DomainUniverse,
    DomainUniverseConfig,
    generate_domain_universe,
)
from .hosting import (
    CDNHosting,
    CDNProvider,
    EdgeCluster,
    HostingConfig,
    HostingDirectory,
    OriginHosting,
    assign_hosting,
)
from .timeline import (
    AddressTimeline,
    ContentMobilityEvent,
    build_cdn_timeline,
    build_origin_timeline,
    build_timeline,
)

__all__ = [
    "ContentDomain",
    "DomainUniverse",
    "DomainUniverseConfig",
    "generate_domain_universe",
    "EdgeCluster",
    "CDNProvider",
    "OriginHosting",
    "CDNHosting",
    "HostingDirectory",
    "HostingConfig",
    "assign_hosting",
    "AddressTimeline",
    "ContentMobilityEvent",
    "build_origin_timeline",
    "build_cdn_timeline",
    "build_timeline",
]
