"""Per-domain address timelines and content mobility events (§3.3, §7.1).

``Addrs(d, t)`` — the set of all IP addresses a domain resolves to at
time ``t``, merged across all vantage points — is the object the
paper's content methodology is built on. A *mobility event* is a change
in that set between consecutive measurement hours.

:class:`AddressTimeline` stores the set as change-points (hour, set),
which is both compact and makes the events trivially available.
Builders turn a hosting model into a timeline using one seeded RNG per
name, honouring vantage *coverage*: addresses served only from regions
with no vantage point (the paper had no PlanetLab node in Africa) are
never observed.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..net import ContentName, IPv4Address
from ..topology import ASTopology, Tier
from .hosting import CDNHosting, OriginHosting

__all__ = [
    "ContentMobilityEvent",
    "AddressTimeline",
    "build_origin_timeline",
    "build_cdn_timeline",
    "build_timeline",
    "HOURS_PER_DAY",
]

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class ContentMobilityEvent:
    """A change of ``Addrs(d, t)`` between consecutive hours."""

    name: ContentName
    hour: int
    old_addrs: FrozenSet[IPv4Address]
    new_addrs: FrozenSet[IPv4Address]

    def added(self) -> FrozenSet[IPv4Address]:
        """Addresses that appeared."""
        return self.new_addrs - self.old_addrs

    def removed(self) -> FrozenSet[IPv4Address]:
        """Addresses that disappeared."""
        return self.old_addrs - self.new_addrs


class AddressTimeline:
    """``Addrs(d, t)`` for one name over a measurement period."""

    def __init__(
        self,
        name: ContentName,
        total_hours: int,
        changes: Sequence[Tuple[int, FrozenSet[IPv4Address]]],
    ):
        if total_hours <= 0:
            raise ValueError("total_hours must be positive")
        if not changes or changes[0][0] != 0:
            raise ValueError("timeline must start with a change at hour 0")
        hours = [h for h, _ in changes]
        if hours != sorted(hours) or len(set(hours)) != len(hours):
            raise ValueError("change hours must be strictly increasing")
        if hours[-1] >= total_hours:
            raise ValueError("change hour beyond the measurement period")
        self.name = name
        self.total_hours = total_hours
        self._hours = hours
        self._sets = [frozenset(s) for _, s in changes]

    def set_at(self, hour: int) -> FrozenSet[IPv4Address]:
        """``Addrs(d, hour)``."""
        if not 0 <= hour < self.total_hours:
            raise ValueError(f"hour {hour} outside 0..{self.total_hours - 1}")
        index = bisect.bisect_right(self._hours, hour) - 1
        return self._sets[index]

    def num_changes(self) -> int:
        """Number of mobility events over the whole period."""
        return len(self._hours) - 1

    def events(self) -> List[ContentMobilityEvent]:
        """All mobility events, in time order."""
        out = []
        for i in range(1, len(self._hours)):
            out.append(
                ContentMobilityEvent(
                    name=self.name,
                    hour=self._hours[i],
                    old_addrs=self._sets[i - 1],
                    new_addrs=self._sets[i],
                )
            )
        return out

    def daily_event_counts(self) -> List[int]:
        """Mobility events per day (paper Fig. 11a)."""
        days = max(1, self.total_hours // HOURS_PER_DAY)
        counts = [0] * days
        for h in self._hours[1:]:
            day = min(h // HOURS_PER_DAY, days - 1)
            counts[day] += 1
        return counts

    def union_all(self) -> FrozenSet[IPv4Address]:
        """Every address ever observed for this name."""
        out: Set[IPv4Address] = set()
        for s in self._sets:
            out |= s
        return frozenset(out)

    def change_points(self) -> List[Tuple[int, FrozenSet[IPv4Address]]]:
        """All change points as ``(hour, set)`` pairs, in time order.

        The first pair is the initial set at hour 0; each subsequent
        pair corresponds to one mobility event.
        """
        return list(zip(self._hours, self._sets))

    def as_matrix(self):
        """This timeline as a columnar membership matrix.

        Returns the memoized :class:`repro.workload.AddrsMatrix` over
        the same change points — the batch form the vectorized content
        evaluator reduces over. Imported lazily so the timeline module
        never requires numpy on its own.
        """
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            from ..workload import AddrsMatrix

            matrix = self._matrix = AddrsMatrix.from_timeline(self)
        return matrix


def _geometric_next(rng: random.Random, prob: float) -> int:
    """Hours until the next success of an hourly Bernoulli(prob)."""
    if prob >= 1.0:
        return 1
    denominator = math.log(1.0 - prob) if prob > 0.0 else 0.0
    if denominator == 0.0:
        # prob == 0, or so small that log1p underflows: never fires.
        return 1 << 30
    u = rng.random()
    return 1 + int(math.log(max(u, 1e-12)) / denominator)


def build_origin_timeline(
    name: ContentName,
    model: OriginHosting,
    hours: int,
    rng: random.Random,
    topology: Optional[ASTopology] = None,
) -> AddressTimeline:
    """Simulate an origin-hosted name: LB rotation + rare relocation."""
    base = tuple(model.base)
    window = rng.randrange(len(model.lb_pool)) if model.lb_pool else 0

    def active_set() -> FrozenSet[IPv4Address]:
        if not model.lb_pool or model.lb_active == 0:
            return frozenset(base)
        pool = model.lb_pool
        chosen = {
            pool[(window + i) % len(pool)] for i in range(model.lb_active)
        }
        return frozenset(base) | chosen

    changes: List[Tuple[int, FrozenSet[IPv4Address]]] = [(0, active_set())]
    for hour in range(1, hours):
        changed = False
        if (
            hour % HOURS_PER_DAY == 0
            and topology is not None
            and rng.random() < model.relocation_prob_per_day
        ):
            base = tuple(_relocate(rng, topology, len(base)))
            changed = True
        if model.lb_pool and rng.random() < model.lb_rotation_prob:
            window = (window + 1) % len(model.lb_pool)
            changed = True
        if changed:
            new_set = active_set()
            if new_set != changes[-1][1]:
                changes.append((hour, new_set))
    return AddressTimeline(name, hours, changes)


def _relocate(
    rng: random.Random, topology: ASTopology, count: int
) -> List[IPv4Address]:
    """A fresh origin site in a random stub AS (provider switch)."""
    stubs = [a for a, n in topology.ases.items() if n.tier is Tier.STUB]
    asn = rng.choice(sorted(stubs))
    prefixes = topology.ases[asn].prefixes
    out = []
    for _ in range(count):
        prefix = rng.choice(prefixes)
        host = rng.randrange(1, min(prefix.num_addresses(), 1 << 16))
        out.append(prefix.address_at(host))
    return out


def build_cdn_timeline(
    name: ContentName,
    model: CDNHosting,
    hours: int,
    rng: random.Random,
    coverage: Optional[Set[str]] = None,
) -> AddressTimeline:
    """Simulate a CDN-delegated name.

    Core clusters are always active; overflow clusters toggle with the
    mapping-churn probability; each active cluster serves ``k``
    addresses out of its pool, advancing its window on rotation.
    Clusters in regions outside ``coverage`` are invisible (they exist
    but no vantage point ever resolves against them).
    """
    clusters = list(model.core_clusters) + list(model.overflow_clusters)
    n_core = len(model.core_clusters)
    visible = [
        coverage is None or c.region in coverage for c in clusters
    ]
    window = [rng.randrange(len(c.pool)) for c in clusters]
    active = [i < n_core or rng.random() < 0.5 for i in range(len(clusters))]

    # Pre-draw change times per cluster: rotations and (for overflow)
    # mapping toggles, as geometric gap sequences.
    per_cluster_rot = model.rotation_prob / max(len(clusters), 1)
    events: List[Tuple[int, str, int]] = []  # (hour, kind, cluster index)
    for i in range(len(clusters)):
        h = _geometric_next(rng, per_cluster_rot)
        while h < hours:
            events.append((h, "rot", i))
            h += _geometric_next(rng, per_cluster_rot)
        if i >= n_core:
            toggle_prob = model.remap_prob
        elif i > 0:
            # Non-anchor core clusters drop out only rarely; the anchor
            # (index 0) never does.
            toggle_prob = model.core_remap_prob
        else:
            toggle_prob = 0.0
        h = _geometric_next(rng, toggle_prob)
        while h < hours:
            events.append((h, "map", i))
            h += _geometric_next(rng, toggle_prob)
    events.sort()

    def current_set() -> FrozenSet[IPv4Address]:
        out: Set[IPv4Address] = set()
        for i, cluster in enumerate(clusters):
            if not active[i] or not visible[i]:
                continue
            pool = cluster.pool
            k = min(model.addrs_per_cluster, len(pool))
            out |= {pool[(window[i] + j) % len(pool)] for j in range(k)}
        return frozenset(out)

    changes: List[Tuple[int, FrozenSet[IPv4Address]]] = [(0, current_set())]
    for hour, kind, i in events:
        if kind == "rot":
            window[i] = (window[i] + 1) % len(clusters[i].pool)
        else:
            active[i] = not active[i]
        new_set = current_set()
        if new_set != changes[-1][1] and hour > changes[-1][0]:
            changes.append((hour, new_set))
        elif new_set != changes[-1][1]:
            # Same hour as the previous change: merge, and drop the
            # entry entirely if the merged set undoes the change.
            changes[-1] = (changes[-1][0], new_set)
            if len(changes) >= 2 and changes[-2][1] == new_set:
                changes.pop()
    return AddressTimeline(name, hours, changes)


def build_timeline(
    name: ContentName,
    model,
    hours: int,
    rng: random.Random,
    coverage: Optional[Set[str]] = None,
    topology: Optional[ASTopology] = None,
) -> AddressTimeline:
    """Dispatch on the hosting model type."""
    if isinstance(model, OriginHosting):
        return build_origin_timeline(name, model, hours, rng, topology=topology)
    if isinstance(model, CDNHosting):
        return build_cdn_timeline(name, model, hours, rng, coverage=coverage)
    raise TypeError(f"unknown hosting model: {type(model).__name__}")
