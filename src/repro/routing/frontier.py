"""Array-native control plane: frontier-batched BGP over CSR arrays.

The scalar oracle (:meth:`repro.routing.bgp.RoutingOracle._compute`)
walks Python dicts per destination; at paper scale that BFS dominates
every cold run. This module re-expresses the same three-stage
Gao-Rexford propagation as frontier-batched operations over integer
arrays: the AS graph lives in CSR form (:class:`CSRTopology`), each
destination's best-route table is three parallel vectors — path type,
path length, and parent (next AS toward the destination) — and every
propagation level is one scatter-min instead of a dict loop.

Bit-identical parity with the scalar oracle rests on three provable
tiebreak reductions:

* **Stage 1 (customer routes up provider links).** All candidates at
  one BFS level have equal length, so the lexicographic path tiebreak
  compares ``(provider,) + path(child)`` across children — and those
  tuples differ first at the child ASN. The winning parent is simply
  the minimum child ASN in the frontier: a scatter-min.
* **Stage 2 (one peer hop).** An AS without a customer route takes the
  peer minimizing ``(held path length, peer ASN)`` — one composite-key
  scatter-min.
* **Stage 3 (provider routes down customer links).** Unit-weight
  multi-source Dijkstra is level-synchronous BFS on total path length;
  equal-length candidates from distinct parents differ first at the
  parent ASN, so the winner is the minimum parent ASN in the level.
  The scalar loop-prevention test (``asn in path[1:]``) is provably
  redundant — every AS on a finalized path is already routed.

Full :class:`~repro.routing.bgp.BestPath` tuples are reconstructed by
following parent chains in path-length order, so the dict API and all
its consumers (iPlane, RIB dumps) are unchanged.

The module also vectorizes the §6.2.1 FIB derivation: a table-driven
CRC-32 reproduces :func:`~repro.routing.ranking.synthetic_med` over
whole prefix batches, and :func:`next_hop_table_batch` ranks all
(prefix, neighbor) candidates with one composite-integer argmin —
including the selective-announcement filter, which needs the *entry
AS* (the penultimate ASN on each path), carried as a fourth per-
destination vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..topology import ASTopology, Relationship
from ..workload import require_numpy

np = require_numpy()

__all__ = [
    "CSRTopology",
    "FrontierEngine",
    "RouteTableBatch",
    "crc32_u64",
    "synthetic_med_batch",
    "next_hop_table_batch",
]

#: Integer path-type codes (match PathType preference order: lower is
#: learned "earlier" in the three-stage sweep).
UNREACHED = -1
ORIGIN = 0
CUSTOMER = 1
PEER = 2
PROVIDER = 3

#: Preference order of the relationship rule (mirrors ranking._REL_RANK).
_REL_RANK = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


def _expand(indptr, indices, rows):
    """Gather the CSR rows ``rows``: ``(sources, targets)`` edge lists.

    ``sources[i]`` is the row each ``targets[i]`` neighbor came from;
    rows with no neighbors contribute nothing.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=indices.dtype)
        return empty, empty
    starts = np.repeat(indptr[rows], counts)
    within = np.arange(total, dtype=indptr.dtype) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(rows, counts), indices[starts + within]


class CSRTopology:
    """The AS graph's three relation sets as CSR integer arrays.

    Node ids are indices into the sorted ASN vector, so ascending index
    order *is* ascending ASN order — which is what lets every "lowest
    ASN" tiebreak become a plain integer minimum. Neighbor lists are
    sorted, matching the deterministic iteration order of the scalar
    oracle.
    """

    #: Buffer names in the flat export (shared memory / array artifacts).
    BUFFER_NAMES = (
        "asns",
        "prov_indptr", "prov_indices",
        "cust_indptr", "cust_indices",
        "peer_indptr", "peer_indices",
    )

    def __init__(self, buffers: Dict[str, "np.ndarray"]):
        self.asns = buffers["asns"]
        self.prov_indptr = buffers["prov_indptr"]
        self.prov_indices = buffers["prov_indices"]
        self.cust_indptr = buffers["cust_indptr"]
        self.cust_indices = buffers["cust_indices"]
        self.peer_indptr = buffers["peer_indptr"]
        self.peer_indices = buffers["peer_indices"]
        self.n = len(self.asns)
        #: ASNs as plain Python ints, for tuple-building hot loops.
        self.asn_list: List[int] = [int(a) for a in self.asns]

    @classmethod
    def from_topology(cls, topology: ASTopology) -> "CSRTopology":
        asns = np.array(sorted(topology.ases), dtype=np.int64)
        index = {int(a): i for i, a in enumerate(asns)}

        def csr(neighbor_sets):
            indptr = np.zeros(len(asns) + 1, dtype=np.int64)
            chunks = []
            for i, asn in enumerate(asns):
                nbrs = sorted(neighbor_sets(int(asn)))
                indptr[i + 1] = indptr[i] + len(nbrs)
                chunks.append(np.array([index[b] for b in nbrs],
                                       dtype=np.int32))
            indices = (np.concatenate(chunks) if chunks
                       else np.empty(0, dtype=np.int32))
            return indptr, indices

        ases = topology.ases
        prov_indptr, prov_indices = csr(lambda a: ases[a].providers)
        cust_indptr, cust_indices = csr(lambda a: ases[a].customers)
        peer_indptr, peer_indices = csr(lambda a: ases[a].peers)
        return cls({
            "asns": asns,
            "prov_indptr": prov_indptr, "prov_indices": prov_indices,
            "cust_indptr": cust_indptr, "cust_indices": cust_indices,
            "peer_indptr": peer_indptr, "peer_indices": peer_indices,
        })

    def to_buffers(self) -> Dict[str, "np.ndarray"]:
        """The flat numpy buffers this CSR round-trips through."""
        return {name: getattr(self, name) for name in self.BUFFER_NAMES}

    def index_of(self, asn: int) -> int:
        """The node index of ``asn`` (raises KeyError if unknown)."""
        i = int(np.searchsorted(self.asns, asn))
        if i >= self.n or int(self.asns[i]) != asn:
            raise KeyError(f"unknown AS{asn}")
        return i

    def indices_of(self, asns: Sequence[int]) -> "np.ndarray":
        """Node indices for a batch of ASNs (all must exist)."""
        values = np.asarray(asns, dtype=np.int64)
        idx = np.searchsorted(self.asns, values)
        if (idx >= self.n).any() or (self.asns[np.minimum(idx, self.n - 1)]
                                     != values).any():
            missing = values[(idx >= self.n)
                             | (self.asns[np.minimum(idx, self.n - 1)]
                                != values)]
            raise KeyError(f"unknown AS{int(missing[0])}")
        return idx.astype(np.int32)


def compute_route_arrays(csr: CSRTopology, dest_idx: int):
    """One destination's best-route table as four parallel vectors.

    Returns ``(ptype, plen, parent, entry)``: path-type code, path
    length in ASNs, the next node toward the destination, and the
    entry node (the penultimate ASN on the path, -1 at the origin) —
    everything the evaluators and FIB derivation gather through.
    """
    n = csr.n
    ptype = np.full(n, UNREACHED, dtype=np.int8)
    plen = np.zeros(n, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int32)
    ptype[dest_idx] = ORIGIN
    plen[dest_idx] = 1

    # Stage 1 — customer routes up provider links, one frontier per
    # BFS level; the winning parent is the minimum child node id.
    frontier = np.array([dest_idx], dtype=np.int32)
    level = 1
    while frontier.size:
        children, provs = _expand(csr.prov_indptr, csr.prov_indices, frontier)
        fresh = ptype[provs] < 0
        children, provs = children[fresh], provs[fresh]
        if children.size == 0:
            break
        best = np.full(n, n, dtype=np.int64)
        np.minimum.at(best, provs, children.astype(np.int64))
        newly = np.unique(provs)
        level += 1
        ptype[newly] = CUSTOMER
        plen[newly] = level
        parent[newly] = best[newly].astype(np.int32)
        frontier = newly.astype(np.int32)

    # Stage 2 — one peering hop off any origin/customer-route holder;
    # composite (held length, peer id) scatter-min.
    unreached = np.nonzero(ptype < 0)[0].astype(np.int32)
    if unreached.size:
        srcs, peers = _expand(csr.peer_indptr, csr.peer_indices, unreached)
        held = (ptype[peers] >= 0) & (ptype[peers] <= CUSTOMER)
        srcs, peers = srcs[held], peers[held]
        if srcs.size:
            big = np.int64(n + 2) * np.int64(n + 2)
            key = plen[peers].astype(np.int64) * (n + 2) + peers
            best = np.full(n, big, dtype=np.int64)
            np.minimum.at(best, srcs, key)
            got = unreached[best[unreached] < big]
            ptype[got] = PEER
            parent[got] = (best[got] % (n + 2)).astype(np.int32)
            plen[got] = (best[got] // (n + 2) + 1).astype(np.int32)

    # Stage 3 — provider routes down customer links: level-synchronous
    # BFS on total path length (multi-source Dijkstra, unit weights);
    # the winning parent at a level is the minimum parent node id.
    reached = ptype >= 0
    if not reached.all() and reached.any():
        max_len = int(plen[reached].max())
        length = 1
        while length <= max_len:
            frontier = np.nonzero((ptype >= 0) & (plen == length))[0]
            if frontier.size:
                parents, custs = _expand(
                    csr.cust_indptr, csr.cust_indices,
                    frontier.astype(np.int32),
                )
                fresh = ptype[custs] < 0
                parents, custs = parents[fresh], custs[fresh]
                if custs.size:
                    best = np.full(n, n, dtype=np.int64)
                    np.minimum.at(best, custs, parents.astype(np.int64))
                    newly = np.unique(custs)
                    ptype[newly] = PROVIDER
                    plen[newly] = length + 1
                    parent[newly] = best[newly].astype(np.int32)
                    max_len = max(max_len, length + 1)
            length += 1

    # Entry nodes: parent path length is always plen-1, so one pass in
    # ascending length order resolves every chain.
    entry = np.full(n, -1, dtype=np.int32)
    routed = ptype >= 0
    if routed.any():
        for length in range(2, int(plen[routed].max()) + 1):
            idxs = np.nonzero(routed & (plen == length))[0]
            if idxs.size:
                entry[idxs] = np.where(
                    parent[idxs] == dest_idx, idxs, entry[parent[idxs]]
                ).astype(np.int32)
    return ptype, plen, parent, entry


class RouteTableBatch:
    """Best-route tables for many destinations, stacked ``(D, N)``.

    Row ``d`` holds destination ``dests[d]``'s table over all ASes in
    node-index (= ascending ASN) order: ``ptype``/``plen``/``parent``/
    ``entry`` exactly as :func:`compute_route_arrays` lays them out.
    """

    def __init__(self, csr: CSRTopology, dests, ptype, plen, parent, entry):
        self.csr = csr
        self.dests = dests
        self.ptype = ptype
        self.plen = plen
        self.parent = parent
        self.entry = entry

    def __len__(self) -> int:
        return len(self.dests)

    def row(self, dest_asn: int) -> int:
        """The row index of ``dest_asn`` (raises KeyError if absent)."""
        hit = np.nonzero(self.dests == dest_asn)[0]
        if hit.size == 0:
            raise KeyError(f"destination AS{dest_asn} not in batch")
        return int(hit[0])

    def materialize(self, dest_asn: int):
        """Row ``dest_asn`` as the scalar-oracle ``{asn: BestPath}`` dict."""
        d = self.row(dest_asn)
        return materialize_routes(
            self.csr, self.ptype[d], self.plen[d], self.parent[d],
        )


#: ptype code -> PathType, resolved lazily (bgp imports this module).
_PATH_TYPES = None


def _path_types():
    global _PATH_TYPES
    if _PATH_TYPES is None:
        from .bgp import PathType

        _PATH_TYPES = {
            ORIGIN: PathType.ORIGIN,
            CUSTOMER: PathType.CUSTOMER,
            PEER: PathType.PEER,
            PROVIDER: PathType.PROVIDER,
        }
    return _PATH_TYPES


def materialize_routes(csr: CSRTopology, ptype, plen, parent):
    """Rebuild the scalar oracle's ``{asn: BestPath}`` dict from arrays.

    Parent chains are followed in ascending path-length order so every
    path tuple extends an already-built parent tuple (paths share
    structure, so this is O(N) tuples, not O(N^2) ASNs).
    """
    from .bgp import BestPath

    types = _path_types()
    asn_list = csr.asn_list
    paths: List[Optional[Tuple[int, ...]]] = [None] * csr.n
    info: Dict[int, "BestPath"] = {}
    order = np.argsort(plen, kind="stable")
    routed = order[ptype[order] >= 0]
    for i in routed.tolist():
        p = parent[i]
        path = ((asn_list[i],) if p < 0
                else (asn_list[i],) + paths[p])  # type: ignore[operator]
        paths[i] = path
        info[asn_list[i]] = BestPath(path, types[int(ptype[i])])
    return info


class FrontierEngine:
    """Per-topology array-route state: CSR encoding + table cache.

    One engine hangs off each :class:`~repro.routing.bgp.RoutingOracle`
    (outside its pickled state — tables are cheap to recompute and may
    be memory-mapped or shared-memory views). ``dirty`` counts tables
    computed since the last :meth:`export_tables`/:meth:`import_tables`,
    mirroring the oracle's dict-cache dirtiness.
    """

    def __init__(self, topology: ASTopology,
                 csr: Optional[CSRTopology] = None):
        with obs.span("routing.batch.csr_build"):
            self.csr = csr if csr is not None else CSRTopology.from_topology(
                topology
            )
        self._tables: Dict[int, Tuple] = {}
        self.dirty = 0

    @property
    def table_cache_size(self) -> int:
        return len(self._tables)

    def table_for(self, dest_asn: int) -> Tuple:
        """``(ptype, plen, parent, entry)`` for one destination."""
        cached = self._tables.get(dest_asn)
        if cached is not None:
            return cached
        table = compute_route_arrays(self.csr, self.csr.index_of(dest_asn))
        self._tables[dest_asn] = table
        self.dirty += 1
        return table

    def batch(self, dests: Iterable[int]) -> RouteTableBatch:
        """Stacked tables for ``dests`` (computing any missing ones)."""
        dests = [int(d) for d in dests]
        missing = [d for d in dests if d not in self._tables]
        if missing:
            with obs.span("routing.batch.compute"):
                for d in missing:
                    self.table_for(d)
            obs.incr("routing.batch.dests", len(missing))
        rows = [self._tables[d] for d in dests]
        return RouteTableBatch(
            self.csr,
            np.array(dests, dtype=np.int64),
            np.stack([r[0] for r in rows]) if rows else np.empty(
                (0, self.csr.n), dtype=np.int8),
            np.stack([r[1] for r in rows]) if rows else np.empty(
                (0, self.csr.n), dtype=np.int32),
            np.stack([r[2] for r in rows]) if rows else np.empty(
                (0, self.csr.n), dtype=np.int32),
            np.stack([r[3] for r in rows]) if rows else np.empty(
                (0, self.csr.n), dtype=np.int32),
        )

    # -- flat-buffer round trip (warm artifacts, shared memory) --------

    def export_tables(self) -> Optional[Dict[str, "np.ndarray"]]:
        """Every cached table as flat stacked buffers (None if empty)."""
        if not self._tables:
            return None
        dests = sorted(self._tables)
        rows = [self._tables[d] for d in dests]
        return {
            "dests": np.array(dests, dtype=np.int64),
            "ptype": np.stack([r[0] for r in rows]),
            "plen": np.stack([r[1] for r in rows]),
            "parent": np.stack([r[2] for r in rows]),
            "entry": np.stack([r[3] for r in rows]),
        }

    def import_tables(self, buffers: Dict[str, "np.ndarray"]) -> None:
        """Adopt previously exported tables (views are kept as-is)."""
        dests = buffers["dests"]
        ptype, plen = buffers["ptype"], buffers["plen"]
        parent, entry = buffers["parent"], buffers["entry"]
        if ptype.shape != (len(dests), self.csr.n):
            raise ValueError(
                f"route-table shape {ptype.shape} does not match "
                f"{len(dests)} destinations over {self.csr.n} ASes"
            )
        for d in range(len(dests)):
            self._tables.setdefault(
                int(dests[d]), (ptype[d], plen[d], parent[d], entry[d])
            )


# -- vectorized MED (table-driven CRC-32) -------------------------------

_CRC_TABLE: Optional["np.ndarray"] = None


def _crc_table() -> "np.ndarray":
    global _CRC_TABLE
    if _CRC_TABLE is None:
        table = np.empty(256, dtype=np.uint32)
        for i in range(256):
            c = i
            for _ in range(8):
                c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
            table[i] = c
        _CRC_TABLE = table
    return _CRC_TABLE


def crc32_u64(values) -> "np.ndarray":
    """``zlib.crc32(v.to_bytes(8, "big"))`` over a uint64 batch."""
    values = np.asarray(values, dtype=np.uint64)
    table = _crc_table()
    crc = np.full(values.shape, 0xFFFFFFFF, dtype=np.uint32)
    for shift in range(56, -8, -8):
        byte = ((values >> np.uint64(shift)) & np.uint64(0xFF)).astype(
            np.uint32
        )
        crc = (crc >> np.uint32(8)) ^ table[(crc ^ byte) & np.uint32(0xFF)]
    return crc ^ np.uint32(0xFFFFFFFF)


def synthetic_med_batch(
    next_hops, networks, lengths,
    modulus: int = 8, nonzero_fraction: float = 0.02,
) -> "np.ndarray":
    """:func:`~repro.routing.ranking.synthetic_med` over aligned batches."""
    seed = (
        (np.asarray(next_hops, dtype=np.uint64) << np.uint64(40))
        ^ (np.asarray(networks, dtype=np.uint64) << np.uint64(8))
        ^ np.asarray(lengths, dtype=np.uint64)
    )
    digest = crc32_u64(seed)
    frac = (digest % np.uint32(1000)).astype(np.float64) / 1000.0
    med = ((digest >> np.uint32(10)) % np.uint32(modulus)).astype(np.int64)
    return np.where(frac >= nonzero_fraction, 0, med)


# -- vectorized FIB derivation (next-hop LUT) ---------------------------

def rank_vectors(vantage) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """One vantage point's neighbor set as integer rank vectors.

    ``(nbr_asns, rel_ranks, is_provider)`` in ascending-ASN order —
    ascending index order therefore encodes the lowest-next-hop
    tiebreak. Cached on the vantage (and seedable from shared memory).
    """
    cached = getattr(vantage, "_rank_vectors", None)
    if cached is not None:
        return cached
    nbrs = sorted(vantage.neighbors)
    rels = [vantage.neighbors[n] for n in nbrs]
    vectors = (
        np.array(nbrs, dtype=np.int64),
        np.array([_REL_RANK[r] for r in rels], dtype=np.int64),
        np.array([r is Relationship.PROVIDER for r in rels], dtype=bool),
    )
    vantage._rank_vectors = vectors
    return vectors


def next_hop_table_batch(vantage, oracle, prefixes) -> "np.ndarray":
    """FIB next hops for a prefix batch — array path of
    :meth:`~repro.routing.bgp.VantagePoint.next_hop_table`.

    Bit-identical to ranking each prefix's candidate routes with
    :func:`~repro.routing.ranking.rank_key`: relationship class, path
    length, MED, and the lowest-next-hop tiebreak fold into one
    composite integer per (prefix, neighbor), minimized per prefix.
    """
    topo = oracle.topology
    count = len(prefixes)
    table = np.full(count, -1, dtype=np.int64)
    if count == 0:
        return table

    origins = np.full(count, -1, dtype=np.int64)
    nets = np.zeros(count, dtype=np.int64)
    lens = np.zeros(count, dtype=np.int64)
    for i, prefix in enumerate(prefixes):
        nets[i] = prefix.network
        lens[i] = prefix.length
        origin = topo.origin_of_prefix(prefix)
        if origin is None:
            origin = topo.origin_of_address(prefix.first_address())
        if origin is not None:
            origins[i] = origin
    routable = np.nonzero(origins >= 0)[0]
    if routable.size == 0:
        return table

    uniq_origins, origin_row = np.unique(origins[routable],
                                         return_inverse=True)
    batch = oracle.routes_to_many(uniq_origins.tolist())
    csr = batch.csr
    nbr_asns, rel_ranks, is_provider = rank_vectors(vantage)
    nbr_idx = csr.indices_of(nbr_asns)
    k = len(nbr_asns)

    # Per (prefix, neighbor) candidate state, gathered through the
    # unique-origin batch rows.
    ptype = batch.ptype[:, nbr_idx][origin_row]
    plen = batch.plen[:, nbr_idx][origin_row].astype(np.int64)
    entry = batch.entry[:, nbr_idx][origin_row]
    valid = (ptype >= 0) & (is_provider[None, :] | (ptype <= CUSTOMER))

    med = synthetic_med_batch(
        np.broadcast_to(nbr_asns[None, :], (routable.size, k)),
        np.broadcast_to(nets[routable][:, None], (routable.size, k)),
        np.broadcast_to(lens[routable][:, None], (routable.size, k)),
    )

    # Selective announcement (§3.2 prefix diversity), vectorized: the
    # chosen provider's node id must match the entry node, with the
    # scalar path's strand fallback.
    if vantage.selective_fraction > 0.0:
        prov_lists = [sorted(topo.ases[int(o)].providers)
                      for o in uniq_origins]
        prov_count = np.array([len(p) for p in prov_lists], dtype=np.int64)
        width = max(int(prov_count.max()), 1)
        prov_mat = np.full((len(uniq_origins), width), -1, dtype=np.int64)
        for r, plist in enumerate(prov_lists):
            prov_mat[r, : len(plist)] = plist
        h = (nets[routable] * 1103515245 + lens[routable]) & 0x7FFFFFFF
        coin = (h % 1000) / 1000.0 < vantage.selective_fraction
        multi = prov_count[origin_row] >= 2
        applies = coin & multi & (valid.sum(axis=1) > 1)
        chosen_asn = prov_mat[
            origin_row, (h >> 8) % np.maximum(prov_count[origin_row], 1)
        ]
        chosen_idx = np.full(len(chosen_asn), -2, dtype=np.int64)
        known = chosen_asn >= 0
        if known.any():
            chosen_idx[known] = csr.indices_of(chosen_asn[known])
        keep = (plen < 2) | (entry == chosen_idx[:, None])
        filtered = valid & np.where(applies[:, None], keep, True)
        stranded = applies & ~filtered.any(axis=1) & valid.any(axis=1)
        valid = np.where(stranded[:, None], valid, filtered)

    # rank_key composite: (rel, path length, MED, neighbor ASN); the
    # neighbor axis is ASN-ascending so the index is the final tiebreak.
    plen_cap = np.int64(csr.n + 2)
    med_cap = np.int64(1024)
    key = ((rel_ranks[None, :] * plen_cap + plen) * med_cap + med) * k
    key = key + np.arange(k, dtype=np.int64)[None, :]
    big = np.int64(4) * plen_cap * med_cap * k + k
    key = np.where(valid, key, big)
    best_j = np.argmin(key, axis=1)
    has_route = valid.any(axis=1)
    table[routable] = np.where(has_route, nbr_asns[best_j], -1)
    return table
