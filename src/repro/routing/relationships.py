"""AS business-relationship inference from AS paths (Gao 2001).

§6.2.1 of the paper: local_pref is uniformly zero in the RouteViews
dumps, so the customer > peer > provider rule is applied using AS
relationships inferred with "standard techniques" — the degree-based
algorithm of L. Gao, *On Inferring Autonomous System Relationships in
the Internet* (ToN 2001). This module implements the basic form of that
algorithm:

1. every AS's *degree* is its number of distinct neighbors seen across
   all paths;
2. each path is split at its highest-degree AS (the "top provider"):
   edges before the top are *uphill* (left AS is a customer of the
   right), edges after are *downhill*;
3. edges that collect transit votes in both directions become
   sibling/mutual-transit — we conservatively label them peers;
4. edges adjacent to the top whose endpoint degrees are within a
   configurable ratio are re-labelled peering.

The output vocabulary is the :class:`~repro.topology.aslevel.Relationship`
enum so inferred relationships plug directly into the route-ranking
rules.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from ..topology import Relationship

__all__ = ["infer_relationships", "relationship_for", "as_degrees"]

Edge = FrozenSet[int]


def as_degrees(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
    """Neighbor-set size of every AS appearing in ``paths``."""
    neighbors: Dict[int, set] = defaultdict(set)
    for path in paths:
        for u, v in zip(path, path[1:]):
            if u == v:
                continue
            neighbors[u].add(v)
            neighbors[v].add(u)
    return {asn: len(nbrs) for asn, nbrs in neighbors.items()}


def infer_relationships(
    paths: Iterable[Sequence[int]],
    peer_degree_ratio: float = 2.0,
) -> Dict[Edge, Tuple[int, int]]:
    """Infer provider/customer/peer labels for every AS edge in ``paths``.

    Returns a map from the undirected edge ``frozenset({a, b})`` to a
    directed label: ``(provider, customer)`` for transit edges, or
    ``(0, 0)`` for peering edges. Use :func:`relationship_for` to read
    the result from one endpoint's perspective.

    ``peer_degree_ratio`` controls step 4: an edge at the top of some
    path is considered a peering when the endpoint degrees differ by
    less than this factor.
    """
    paths = [tuple(p) for p in paths]
    degree = as_degrees(paths)

    # Votes: (provider, customer) direction counts per undirected edge.
    transit_votes: Dict[Edge, Counter] = defaultdict(Counter)
    top_edges: set = set()
    for path in paths:
        if len(path) < 2:
            continue
        top_index = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for i, (u, v) in enumerate(zip(path, path[1:])):
            if u == v:
                continue
            edge = frozenset((u, v))
            if i < top_index:
                # Uphill segment: u is v's customer, v provides transit.
                transit_votes[edge][(v, u)] += 1
            else:
                # Downhill: u provides transit to v.
                transit_votes[edge][(u, v)] += 1
            if i == top_index - 1 or i == top_index:
                top_edges.add(edge)

    labels: Dict[Edge, Tuple[int, int]] = {}
    for edge, votes in transit_votes.items():
        a, b = sorted(edge)
        ab = votes.get((a, b), 0)  # a provides to b
        ba = votes.get((b, a), 0)
        if ab > 0 and ba > 0:
            # Transit observed in both directions: treat as peering
            # (Gao labels these sibling/mutual transit; for route
            # ranking peering is the conservative choice).
            labels[edge] = (0, 0)
        elif ab > 0:
            labels[edge] = (a, b)
        else:
            labels[edge] = (b, a)

    # Step 4: re-label near-equal-degree top edges as peerings.
    for edge in top_edges:
        a, b = sorted(edge)
        da, db = degree.get(a, 1), degree.get(b, 1)
        lo, hi = min(da, db), max(da, db)
        if lo > 0 and hi / lo < peer_degree_ratio:
            labels[edge] = (0, 0)
    return labels


def relationship_for(
    labels: Mapping[Edge, Tuple[int, int]], asn: int, neighbor: int
) -> Relationship:
    """What ``neighbor`` is to ``asn`` under inferred ``labels``."""
    edge = frozenset((asn, neighbor))
    if edge not in labels:
        raise KeyError(f"no inferred relationship for AS{asn} -- AS{neighbor}")
    provider, customer = labels[edge]
    if (provider, customer) == (0, 0):
        return Relationship.PEER
    if provider == asn:
        return Relationship.CUSTOMER  # neighbor is our customer
    return Relationship.PROVIDER
