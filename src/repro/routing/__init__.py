"""Interdomain and intradomain routing: BGP propagation, route ranking,
relationship inference, and RIB/FIB derivation at vantage routers."""

from .bgp import BestPath, PathType, RoutingOracle, VantagePoint
from .ranking import Route, best_route, rank_key, rank_routes, synthetic_med
from .relationships import as_degrees, infer_relationships, relationship_for

__all__ = [
    "BestPath",
    "PathType",
    "RoutingOracle",
    "VantagePoint",
    "Route",
    "best_route",
    "rank_key",
    "rank_routes",
    "synthetic_med",
    "as_degrees",
    "infer_relationships",
    "relationship_for",
]
