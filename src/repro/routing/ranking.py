"""Interdomain routes and the §6.2.1 route-ranking rules.

The paper derives a FIB from each RouteViews RIB by rank-ordering all
routes for a prefix with typical BGP policy rules:

1. higher ``local_pref`` first — and because local_pref is uniformly 0
   in the dumps, the customer > peer > provider relationship (inferred
   Gao-style) stands in for it;
2. shorter AS path;
3. smaller MED;
4. (deterministic tiebreak) lowest next-hop ASN.

:func:`rank_key` encodes exactly that order, so ``min(routes,
key=rank_key)`` is the route whose ``next_hop`` the paper treats as the
output port (§6.2.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..net import IPv4Prefix
from ..topology import Relationship

__all__ = ["Route", "rank_key", "best_route", "rank_routes", "synthetic_med"]

#: Preference order of the relationship rule: lower is better.
_REL_RANK = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


@dataclass(frozen=True)
class Route:
    """One RIB entry: an interdomain route towards ``prefix``.

    ``next_hop`` is the neighbor ASN the route was learned from; the
    paper uses the next hop as a proxy for the output port (§6.2.2).
    ``relationship`` is what the next-hop neighbor is to the local AS
    (customer, peer, or provider), standing in for local_pref.
    """

    prefix: IPv4Prefix
    next_hop: int
    as_path: Tuple[int, ...]
    relationship: Relationship
    med: int = 0
    local_pref: int = 0

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("a route must have a non-empty AS path")
        if self.as_path[0] != self.next_hop:
            raise ValueError(
                f"AS path must start at the next hop: "
                f"{self.as_path[0]} != {self.next_hop}"
            )

    @property
    def origin_asn(self) -> int:
        """The AS originating the prefix (last ASN on the path)."""
        return self.as_path[-1]

    def path_length(self) -> int:
        """AS-path length in ASNs."""
        return len(self.as_path)


def rank_key(route: Route) -> Tuple[int, int, int, int, int]:
    """Sort key implementing the §6.2.1 decision process (lower wins)."""
    return (
        -route.local_pref,
        _REL_RANK[route.relationship],
        route.path_length(),
        route.med,
        route.next_hop,
    )


def rank_routes(routes: Iterable[Route]) -> List[Route]:
    """All routes, best first, under :func:`rank_key`."""
    return sorted(routes, key=rank_key)


def best_route(routes: Iterable[Route]) -> Optional[Route]:
    """The top-ranked route, or None for an empty iterable."""
    routes = list(routes)
    if not routes:
        return None
    return min(routes, key=rank_key)


def synthetic_med(
    next_hop: int,
    prefix: IPv4Prefix,
    modulus: int = 8,
    nonzero_fraction: float = 0.02,
) -> int:
    """A deterministic per-(neighbor, prefix) MED value.

    Real MEDs vary by prefix and neighbor for intradomain traffic-
    engineering reasons our AS-level substrate cannot see; this stable
    hash reproduces prefix-level FIB diversity with no global state.
    Most pairs get MED 0 (as in real tables, where MED is sparsely
    set), so full ties usually fall through to the deterministic
    lowest-next-hop rule instead of flapping per prefix.
    """
    seed = (next_hop << 40) ^ (prefix.network << 8) ^ prefix.length
    digest = zlib.crc32(seed.to_bytes(8, "big"))
    if (digest % 1000) / 1000.0 >= nonzero_fraction:
        return 0
    return (digest >> 10) % modulus
