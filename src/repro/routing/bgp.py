"""Policy-driven interdomain routing over the synthetic AS topology.

This module computes, for every destination AS, the best
policy-compliant (valley-free / Gao-Rexford) route from every other AS,
and derives the *candidate route set* visible at a vantage router —
the synthetic equivalent of a RouteViews RIB (§3.2, §6.2.1).

Model
-----
Routes propagate under the standard export rules:

* an AS exports routes learned from customers (and its own prefixes) to
  *everyone*;
* routes learned from peers or providers are exported *only to
  customers*.

Each AS selects one best route per destination with the canonical
preference: customer-learned > peer-learned > provider-learned, then
shortest AS path, then lowest next-hop ASN. The per-destination
computation is the usual three-stage breadth-first sweep (customer
routes up the provider DAG, one peer hop, provider routes down), which
yields exactly the stable state of this policy system.

A :class:`VantagePoint` is a route collector attached to a set of
neighbor ASes with explicit business relationships. It originates
nothing and transits nothing (like a RouteViews collector), so its RIB
for a destination is: for each neighbor, the neighbor's best route —
if the neighbor's export policy towards the collector allows it.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..net import IPv4Address, IPv4Prefix
from ..topology import ASTopology, Relationship
from .ranking import Route, best_route, rank_routes, synthetic_med

__all__ = [
    "PathType",
    "BestPath",
    "RoutingOracle",
    "VantagePoint",
]


class PathType(enum.Enum):
    """How an AS learned its best route (determines what it re-exports)."""

    ORIGIN = "origin"  # the AS originates the destination itself
    CUSTOMER = "customer"  # learned from a customer
    PEER = "peer"  # learned from a peer
    PROVIDER = "provider"  # learned from a provider


#: Path types an AS may export to its peers and providers.
_EXPORTABLE_UPWARD = (PathType.ORIGIN, PathType.CUSTOMER)


def _array_mode() -> bool:
    """True when the frontier-batched array control plane should serve.

    ``REPRO_SCALAR=1`` (or a numpy-free interpreter) routes everything
    through the per-destination dict reference implementation instead.
    """
    try:
        from ..workload import scalar_mode
    except ImportError:  # numpy-free environment: scalar only
        return False
    return not scalar_mode()


@dataclass(frozen=True)
class BestPath:
    """An AS's best route to some destination AS."""

    path: Tuple[int, ...]  # from this AS (inclusive) to the destination
    path_type: PathType

    def length(self) -> int:
        """Number of ASNs on the path."""
        return len(self.path)


def _better(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Within one path type: shorter path wins, then lexicographic path.

    Lexicographic comparison on the ASN tuple subsumes the lowest-
    next-hop tiebreak and makes the oracle fully deterministic.
    """
    return (len(a), a) < (len(b), b)


class RoutingOracle:
    """Per-destination best policy paths for every AS, computed lazily."""

    def __init__(self, topology: ASTopology):
        self._topo = topology
        self._cache: Dict[int, Dict[int, BestPath]] = {}
        #: Destinations computed since construction, unpickling, or the
        #: last :meth:`mark_clean` — i.e. routes a warm-cache snapshot
        #: does not yet hold.
        self._dirty = 0
        #: Lazily built array control plane (never pickled: its tables
        #: may be memory-mapped artifacts or shared-memory views).
        self._frontier = None

    @property
    def topology(self) -> ASTopology:
        """The AS topology routes are computed over."""
        return self._topo

    @property
    def route_cache_size(self) -> int:
        """Number of destinations with fully computed routes."""
        return len(self._cache)

    @property
    def dirty_routes(self) -> int:
        """Destinations computed since the last snapshot/:meth:`mark_clean`."""
        return self._dirty

    def mark_clean(self) -> None:
        """Declare the accumulated routes persisted (resets dirtiness)."""
        self._dirty = 0

    def __getstate__(self):
        # A pickled oracle *is* the snapshot, so it carries no dirt —
        # rehydrated copies must not re-persist routes they were loaded
        # with. The array control plane is dropped for the same reason
        # (and because its tables may be mmap/shared-memory views that
        # must not be serialized): a rehydrated oracle rebuilds or
        # re-imports its tables, starting clean.
        state = dict(self.__dict__)
        state["_dirty"] = 0
        state["_frontier"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Pre-dirtiness pickles (older cache entries) lack the fields.
        self.__dict__.setdefault("_dirty", 0)
        self.__dict__.setdefault("_frontier", None)

    def frontier_engine(self):
        """The array control plane for this topology (built on demand)."""
        engine = self._frontier
        if engine is None:
            from .frontier import FrontierEngine

            engine = FrontierEngine(self._topo)
            self._frontier = engine
        return engine

    @property
    def table_dirty(self) -> int:
        """Array route tables computed since the last export/import."""
        engine = self._frontier
        return 0 if engine is None else engine.dirty

    def adopt_csr(self, csr) -> None:
        """Seed the array control plane with a pre-built CSR topology
        (e.g. a shared-memory view), skipping the encode pass."""
        if self._frontier is None:
            from .frontier import FrontierEngine

            self._frontier = FrontierEngine(self._topo, csr=csr)

    def export_route_tables(self):
        """Cached array tables as flat buffers (None when empty).

        Marks the engine clean: the caller is persisting the snapshot.
        """
        engine = self._frontier
        if engine is None:
            return None
        buffers = engine.export_tables()
        if buffers is not None:
            engine.dirty = 0
        return buffers

    def import_route_tables(self, buffers, csr=None) -> None:
        """Adopt previously exported array tables (warm artifact / shm)."""
        if self._frontier is None:
            from .frontier import FrontierEngine

            self._frontier = FrontierEngine(self._topo, csr=csr)
        self._frontier.import_tables(buffers)

    def routes_to(self, dest_asn: int) -> Dict[int, BestPath]:
        """Best path from every AS to ``dest_asn`` (absent = unreachable)."""
        cached = self._cache.get(dest_asn)
        if cached is not None:
            return cached
        if dest_asn not in self._topo.ases:
            raise KeyError(f"unknown destination AS{dest_asn}")
        if _array_mode():
            from .frontier import materialize_routes

            engine = self.frontier_engine()
            ptype, plen, parent, _entry = engine.table_for(dest_asn)
            result = materialize_routes(engine.csr, ptype, plen, parent)
        else:
            result = self._compute(dest_asn)
        self._cache[dest_asn] = result
        self._dirty += 1
        obs.incr("oracle.demand_computations")
        # ``.size`` suffix: merged by summation across workers (each
        # worker grows its own cache; aggregate memory is the sum).
        obs.gauge("oracle.route_cache.size", len(self._cache))
        return result

    def routes_to_many(self, dest_asns):
        """Best-route tables for many destinations as stacked arrays.

        The bulk control-plane API: returns a
        :class:`~repro.routing.frontier.RouteTableBatch` whose rows the
        vectorized evaluators and :meth:`VantagePoint.next_hop_table`
        gather through directly. ``batch.materialize(dest)`` rebuilds
        the exact per-destination dict :meth:`routes_to` returns.
        """
        return self.frontier_engine().batch(dest_asns)

    def best_path(self, source_asn: int, dest_asn: int) -> Optional[BestPath]:
        """The best policy path from ``source_asn`` to ``dest_asn``."""
        return self.routes_to(dest_asn).get(source_asn)

    def _compute(self, dest: int) -> Dict[int, BestPath]:
        topo = self._topo
        info: Dict[int, BestPath] = {dest: BestPath((dest,), PathType.ORIGIN)}

        # Stage 1 — customer routes: propagate up provider links, level
        # by level (BFS), so every AS in the destination's provider
        # cone gets its shortest customer-learned path.
        current: Dict[int, Tuple[int, ...]] = {dest: (dest,)}
        while current:
            candidates: Dict[int, Tuple[int, ...]] = {}
            for child in sorted(current):
                child_path = current[child]
                for provider in sorted(topo.ases[child].providers):
                    if provider in info:
                        continue
                    cand = (provider,) + child_path
                    prev = candidates.get(provider)
                    if prev is None or _better(cand, prev):
                        candidates[provider] = cand
            for asn, path in candidates.items():
                info[asn] = BestPath(path, PathType.CUSTOMER)
            current = candidates

        # Stage 2 — peer routes: one peering hop off any AS holding a
        # customer/origin route. Only ASes that did not get a customer
        # route take one (customer routes are strictly preferred).
        peer_adds: Dict[int, Tuple[int, ...]] = {}
        holders = dict(info)
        for asn in sorted(topo.ases):
            if asn in info:
                continue
            best: Optional[Tuple[int, ...]] = None
            for peer in sorted(topo.ases[asn].peers):
                held = holders.get(peer)
                if held is None:
                    continue
                cand = (asn,) + held.path
                if best is None or _better(cand, best):
                    best = cand
            if best is not None:
                peer_adds[asn] = best
        for asn, path in peer_adds.items():
            info[asn] = BestPath(path, PathType.PEER)

        # Stage 3 — provider routes: propagate down customer links from
        # every AS that has a route, in order of total path length
        # (Dijkstra with unit weights and multi-source initialization;
        # sources start at their existing path lengths).
        heap: List[Tuple[int, Tuple[int, ...], int]] = []
        for asn, bp in info.items():
            for customer in topo.ases[asn].customers:
                if customer in info:
                    continue
                cand = (customer,) + bp.path
                heapq.heappush(heap, (len(cand), cand, customer))
        while heap:
            _, path, asn = heapq.heappop(heap)
            if asn in info:
                continue
            if asn in path[1:]:
                continue  # loop prevention
            info[asn] = BestPath(path, PathType.PROVIDER)
            for customer in topo.ases[asn].customers:
                if customer in info:
                    continue
                cand = (customer,) + path
                heapq.heappush(heap, (len(cand), cand, customer))
        return info


@dataclass
class VantagePoint:
    """A route collector: the synthetic analogue of one paper router.

    ``neighbors`` maps each adjacent ASN to its relationship *from the
    collector's point of view* (``Relationship.CUSTOMER`` means the
    neighbor is the collector's customer). ``host_region`` records
    where the router physically sits, for reporting only.
    """

    name: str
    host_region: str
    neighbors: Dict[int, Relationship]
    #: Fraction of multi-provider origins whose prefixes are selectively
    #: announced (traffic engineering); adds prefix-level diversity.
    selective_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.neighbors:
            raise ValueError(f"vantage {self.name!r} has no neighbors")

    def next_hop_degree(self) -> int:
        """Number of distinct possible next hops (neighbor count)."""
        return len(self.neighbors)

    # -- RIB / FIB derivation -----------------------------------------

    def candidate_routes(
        self, oracle: RoutingOracle, prefix: IPv4Prefix
    ) -> List[Route]:
        """The RIB entries this collector holds for ``prefix``.

        For each neighbor: take the neighbor's best path to the
        prefix's origin AS, apply the neighbor's export policy toward
        the collector, stamp a deterministic MED, and label the route
        with the collector's relationship to that neighbor.
        """
        origin = oracle.topology.origin_of_prefix(prefix)
        if origin is None:
            origin = oracle.topology.origin_of_address(prefix.first_address())
        if origin is None:
            return []
        return self.candidate_routes_to_origin(oracle, origin, prefix)

    def candidate_routes_to_origin(
        self, oracle: RoutingOracle, origin_asn: int, prefix: IPv4Prefix
    ) -> List[Route]:
        """RIB entries for a prefix known to be originated by ``origin_asn``."""
        table = oracle.routes_to(origin_asn)
        routes: List[Route] = []
        for nbr in sorted(self.neighbors):
            rel = self.neighbors[nbr]
            bp = table.get(nbr)
            if bp is None:
                continue
            if rel is not Relationship.PROVIDER and bp.path_type not in (
                _EXPORTABLE_UPWARD
            ):
                # The neighbor treats the collector as a peer or its
                # provider, so it exports only customer/origin routes.
                continue
            routes.append(
                Route(
                    prefix=prefix,
                    next_hop=nbr,
                    as_path=bp.path,
                    relationship=rel,
                    med=synthetic_med(nbr, prefix),
                )
            )
        routes = self._apply_selective_announcement(oracle, origin_asn, prefix, routes)
        return routes

    def _apply_selective_announcement(
        self,
        oracle: RoutingOracle,
        origin_asn: int,
        prefix: IPv4Prefix,
        routes: List[Route],
    ) -> List[Route]:
        """Prefix-level traffic engineering (§3.2 prefix diversity).

        A deterministic fraction of prefixes belonging to multi-provider
        origins are announced through a single chosen provider; routes
        entering the origin through a different provider are dropped
        (falling back to the full set if the filter would strand the
        prefix).
        """
        if self.selective_fraction <= 0.0 or len(routes) <= 1:
            return routes
        providers = sorted(oracle.topology.ases[origin_asn].providers)
        if len(providers) < 2:
            return routes
        # Deterministic per-prefix coin flip and provider choice.
        h = (prefix.network * 1103515245 + prefix.length) & 0x7FFFFFFF
        if (h % 1000) / 1000.0 >= self.selective_fraction:
            return routes
        chosen = providers[(h >> 8) % len(providers)]
        filtered = [
            r
            for r in routes
            if len(r.as_path) < 2 or r.as_path[-2] == chosen
        ]
        return filtered if filtered else routes

    def fib_best(
        self, oracle: RoutingOracle, prefix: IPv4Prefix
    ) -> Optional[Route]:
        """The FIB entry: the top-ranked RIB route for ``prefix``."""
        return best_route(self.candidate_routes(oracle, prefix))

    def next_hop_table(self, oracle: RoutingOracle, prefixes) -> "list":
        """FIB next hops for a batch of prefixes, as an int64 array.

        Entry ``i`` is the next-hop ASN of :meth:`fib_best` for
        ``prefixes[i]``, or ``-1`` when the collector holds no route —
        the dense LUT the vectorized evaluators gather through instead
        of calling :meth:`fib_best` per event.
        """
        from ..workload import require_numpy

        if _array_mode():
            from .frontier import next_hop_table_batch

            with obs.span("routing.batch.next_hop_table"):
                table = next_hop_table_batch(self, oracle, prefixes)
            obs.incr("vantage.next_hop_table.prefixes", len(prefixes))
            return table
        np = require_numpy()
        table = np.full(len(prefixes), -1, dtype=np.int64)
        for i, prefix in enumerate(prefixes):
            best = self.fib_best(oracle, prefix)
            if best is not None:
                table[i] = best.next_hop
        obs.incr("vantage.next_hop_table.prefixes", len(prefixes))
        return table

    def best_next_hop_for_address(
        self, oracle: RoutingOracle, address: IPv4Address
    ) -> Optional[int]:
        """The output port (next-hop ASN) used for ``address``."""
        prefix = oracle.topology.covering_prefix(address)
        if prefix is None:
            return None
        best = self.fib_best(oracle, prefix)
        return None if best is None else best.next_hop

    def ranked_routes_for_address(
        self, oracle: RoutingOracle, address: IPv4Address
    ) -> List[Route]:
        """All RIB routes covering ``address``, best first."""
        prefix = oracle.topology.covering_prefix(address)
        if prefix is None:
            return []
        return rank_routes(self.candidate_routes(oracle, prefix))
