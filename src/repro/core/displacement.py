"""The displacement test (§3.1-§3.2).

A mobility event *displaces* an endpoint with respect to a router if
the endpoint moved from one longest-matching forwarding entry to
another and the two entries point to different output ports — that is
the precise condition under which a purely name-based router must
change its forwarding behaviour to keep delivering to the endpoint.

Two variants:

* **intradomain** (§3.1): ports come from shortest-path FIBs of an
  :class:`~repro.topology.intradomain.IntradomainNetwork`;
* **interdomain** (§3.2): ports are BGP next hops at a vantage router,
  derived from its RIB (``next_hop`` as output-port proxy, §6.2.2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..mobility import MobilityEvent
from ..net import IPv4Address, IPv4Prefix
from ..routing import RoutingOracle, VantagePoint
from ..topology import IntradomainNetwork

__all__ = [
    "intradomain_displaced",
    "InterdomainPortMap",
    "interdomain_displaced",
]


def intradomain_displaced(
    network: IntradomainNetwork,
    router: Hashable,
    old_addr: IPv4Address,
    new_addr: IPv4Address,
) -> bool:
    """§3.1: does ``router`` need an update when an endpoint moves
    from ``old_addr`` to ``new_addr``?

    True when the longest-matching entries for the two addresses point
    to different output ports (the Fig. 2 condition). Addresses with no
    matching entry are treated as unroutable and never force an update
    by themselves.
    """
    old_port = network.lookup_port(router, old_addr)
    new_port = network.lookup_port(router, new_addr)
    if old_port is None or new_port is None:
        return False
    return old_port != new_port


class InterdomainPortMap:
    """Cached address -> output-port mapping at one vantage router.

    The best next hop depends only on the covering announced prefix, so
    lookups are cached per prefix; a full device-mobility evaluation
    touches each prefix many times.
    """

    def __init__(self, vantage: VantagePoint, oracle: RoutingOracle):
        self.vantage = vantage
        self._oracle = oracle
        self._cache: Dict[IPv4Prefix, Optional[int]] = {}

    def port_for_prefix(self, prefix: IPv4Prefix) -> Optional[int]:
        """Best next hop for ``prefix`` (None if no route)."""
        if prefix not in self._cache:
            best = self.vantage.fib_best(self._oracle, prefix)
            self._cache[prefix] = None if best is None else best.next_hop
        return self._cache[prefix]

    def port_for_address(self, address: IPv4Address) -> Optional[int]:
        """Best next hop for the prefix covering ``address``."""
        prefix = self._oracle.topology.covering_prefix(address)
        if prefix is None:
            return None
        return self.port_for_prefix(prefix)

    def port_table(self, prefixes):
        """Output ports for a batch of prefixes, as an int64 array.

        Entry ``i`` is :meth:`port_for_prefix` of ``prefixes[i]`` with
        ``None`` encoded as ``-1`` — the per-router LUT the vectorized
        device evaluator gathers through with one fancy-index per
        column. Shares (and warms) the same per-prefix cache the scalar
        path uses, so mixing the two paths never recomputes a route.
        """
        from ..workload import require_numpy

        np = require_numpy()
        missing = [p for p in prefixes if p not in self._cache]
        if missing:
            filled = self._shared_next_hops(missing)
            if filled is None:
                filled = self.vantage.next_hop_table(self._oracle, missing)
            for prefix, port in zip(missing, filled.tolist()):
                self._cache[prefix] = None if port < 0 else port
        table = np.empty(len(prefixes), dtype=np.int64)
        for i, prefix in enumerate(prefixes):
            port = self._cache[prefix]
            table[i] = -1 if port is None else port
        return table

    def _shared_next_hops(self, prefixes):
        """Next hops from the pool's shared-memory LUT, or None.

        A worker attached to an exported World holds this vantage's
        full FIB as a flat array keyed by packed prefix; resolving
        missing prefixes is then a binary-search gather instead of a
        route ranking. Bit-identical by construction: the parent built
        the LUT with the very ranking this falls back to.
        """
        try:
            from ..workload import scalar_mode

            if scalar_mode():
                return None
            from ..engine import shm as shm_world

            filled = shm_world.attached_next_hops(
                self.vantage.name, prefixes
            )
        except Exception:
            return None
        if filled is not None:
            from .. import obs

            obs.incr("displacement.shm_lut.prefixes", len(prefixes))
        return filled

    def cache_size(self) -> int:
        """Number of prefixes resolved so far."""
        return len(self._cache)


def interdomain_displaced(
    port_map: InterdomainPortMap, event: MobilityEvent
) -> bool:
    """§3.2/§6.2.2: does the mobility event change the router's best
    forwarding port for the moving device?

    Uses the next hop of the highest-ranked RIB route as the output
    port, "implicitly assuming that the forwarding output port changes
    if and only if the next hop attribute changes".
    """
    old_port = port_map.port_for_address(event.old.ip)
    new_port = port_map.port_for_address(event.new.ip)
    if old_port is None or new_port is None:
        return False
    return old_port != new_port
