"""Compact routing: the stretch vs. table-size trade-off (§2.1, §5).

The paper frames its update-cost analysis against the compact-routing
literature: "with N flat identifiers, to be within 3x stretch of
shortest-path, each router needs to maintain Ω(N) forwarding entries;
for up to 5x stretch, it is Ω(√N)" (§2.1, citing Krioukov et al. and
Thorup-Zwick). This module implements a Thorup-Zwick-style landmark
scheme so that third axis of the design space — traded against the
update cost and stretch axes the paper measures — is concrete:

* a set of **landmarks** is sampled; every router knows the shortest
  path to every landmark;
* every router additionally keeps entries for its **cluster**: the
  nodes that are closer to it than to their own nearest landmark;
* a packet for destination ``d`` is routed directly when ``d`` is in
  the table, and otherwise via ``d``'s nearest landmark — the classic
  ≤3x multiplicative stretch construction.

Fewer landmarks → smaller tables (toward Θ(√N) at the optimum sampling
rate) but longer detours; landmarks everywhere degenerates to
shortest-path routing with Θ(N) entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set

from ..topology import Graph

__all__ = ["CompactRoutingScheme", "CompactStats"]

Node = Hashable


@dataclass(frozen=True)
class CompactStats:
    """Aggregate cost/benefit of one compact-routing instance."""

    num_landmarks: int
    mean_table_size: float
    max_table_size: int
    mean_multiplicative_stretch: float
    max_multiplicative_stretch: float


class CompactRoutingScheme:
    """A landmark (Thorup-Zwick style) compact routing scheme."""

    def __init__(
        self,
        graph: Graph,
        landmarks: Optional[Sequence[Node]] = None,
        sample_prob: float = 0.3,
        rng: Optional[random.Random] = None,
    ):
        if not graph.is_connected():
            raise ValueError("compact routing needs a connected graph")
        self._graph = graph
        self._nodes = sorted(graph.nodes(), key=repr)
        if landmarks is None:
            rng = rng or random.Random(0)
            landmarks = [
                node for node in self._nodes if rng.random() < sample_prob
            ]
            if not landmarks:
                landmarks = [self._nodes[0]]
        if not landmarks:
            raise ValueError("need at least one landmark")
        self._landmarks: List[Node] = sorted(set(landmarks), key=repr)
        for lm in self._landmarks:
            if lm not in graph:
                raise ValueError(f"landmark {lm!r} is not in the graph")

        # All distances we need: from every landmark, and from every
        # node (the toy graphs are small; clarity over asymptotics).
        self._dist: Dict[Node, Dict[Node, int]] = {
            node: graph.bfs_distances(node) for node in self._nodes
        }
        # Nearest landmark per node (deterministic tie-break).
        self._home_landmark: Dict[Node, Node] = {}
        for node in self._nodes:
            self._home_landmark[node] = min(
                self._landmarks,
                key=lambda lm: (self._dist[node][lm], repr(lm)),
            )
        # Cluster(w) = nodes strictly closer to w than to their own
        # nearest landmark. Every router's table = landmarks + the
        # nodes whose cluster it belongs to... equivalently each router
        # v stores: all landmarks, plus every w with v in cluster(w).
        # For table accounting we compute, per router, the set of
        # destinations it holds a direct entry for.
        self._direct_entries: Dict[Node, Set[Node]] = {
            node: set(self._landmarks) for node in self._nodes
        }
        for w in self._nodes:
            d_w_home = self._dist[w][self._home_landmark[w]]
            for v in self._nodes:
                if self._dist[w][v] < d_w_home:
                    self._direct_entries[v].add(w)

    @property
    def landmarks(self) -> List[Node]:
        """The landmark set."""
        return list(self._landmarks)

    def table_size(self, router: Node) -> int:
        """Number of forwarding entries ``router`` keeps."""
        return len(self._direct_entries[router])

    def has_direct_entry(self, router: Node, dest: Node) -> bool:
        """True if ``router`` can route to ``dest`` without a landmark."""
        return dest in self._direct_entries[router]

    def route_length(self, source: Node, dest: Node) -> int:
        """Hops the scheme's route takes from ``source`` to ``dest``.

        Direct when the source holds an entry for the destination (the
        whole shortest path stays inside tables by construction of the
        cluster definition); otherwise via the destination's home
        landmark.
        """
        if source == dest:
            return 0
        if self.has_direct_entry(source, dest):
            return self._dist[source][dest]
        landmark = self._home_landmark[dest]
        return self._dist[source][landmark] + self._dist[landmark][dest]

    def stretch(self, source: Node, dest: Node) -> float:
        """Multiplicative stretch of the scheme's route."""
        if source == dest:
            return 1.0
        shortest = self._dist[source][dest]
        return self.route_length(source, dest) / shortest

    def stats(self) -> CompactStats:
        """Aggregate table sizes and stretch over all ordered pairs."""
        sizes = [self.table_size(node) for node in self._nodes]
        stretches: List[float] = []
        for source in self._nodes:
            for dest in self._nodes:
                if source != dest:
                    stretches.append(self.stretch(source, dest))
        return CompactStats(
            num_landmarks=len(self._landmarks),
            mean_table_size=sum(sizes) / len(sizes),
            max_table_size=max(sizes),
            mean_multiplicative_stretch=sum(stretches) / len(stretches),
            max_multiplicative_stretch=max(stretches),
        )
