"""The three purist location-independence architectures (§2, Fig. 1).

Every known approach reduces to one of three options for delivering the
first packet to a moved endpoint:

* **indirection routing** (Mobile IP / GSM / i3): packets detour via a
  home agent that tracks the endpoint's current address;
* **name resolution** (DNS / HIP / LISP / MobilityFirst / XIA): the
  sender queries an extra-network service, then routes directly;
* **name-based routing** (TRIAD / ROFL / NDN): routers forward on the
  name itself; mobility updates propagate to (some) routers.

Each class evaluates the paper's three metrics — per-event update cost
(how many routers/agents must change state), additive path stretch, and
forwarding-state size — over a shortest-path-routed topology with a
random-hop mobility model, the same setting as the §5 analysis. The
classes share one interface so the Table 1 bench and the examples can
sweep them uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..faults import HOME_AGENT, FaultSchedule
from ..topology import Graph

__all__ = [
    "ArchitectureMetrics",
    "Architecture",
    "IndirectionRouting",
    "NameResolution",
    "NameBasedRouting",
]

Node = Hashable


@dataclass(frozen=True)
class ArchitectureMetrics:
    """Metrics of one mobility event under one architecture."""

    #: Fraction of routers (plus agents/resolvers, for the aggregate
    #: view the paper's Table 1 uses) that must update state.
    update_fraction: float
    #: Additive path stretch for reaching the endpoint after the move.
    path_stretch: float
    #: Number of routers holding per-endpoint forwarding state.
    routers_with_state: int


class Architecture:
    """Common interface: evaluate one mobility event on a topology."""

    name: str = "abstract"

    def __init__(self, graph: Graph):
        self._graph = graph
        self._nodes = sorted(graph.nodes(), key=repr)
        self._n = len(self._nodes)
        self._dist_cache: Dict[Node, Dict[Node, int]] = {}

    def _distances(self, node: Node) -> Dict[Node, int]:
        if node not in self._dist_cache:
            self._dist_cache[node] = self._graph.bfs_distances(node)
        return self._dist_cache[node]

    def evaluate_move(
        self, old_router: Node, new_router: Node, correspondent: Node
    ) -> ArchitectureMetrics:
        """Metrics for an endpoint moving old -> new, reached from
        ``correspondent``."""
        raise NotImplementedError

    def expected_metrics(
        self, steps: int, rng: random.Random
    ) -> ArchitectureMetrics:
        """Average metrics under the §5 random-hop mobility model.

        Old and new positions are independent uniform draws (so a
        "move" may keep the endpoint in place, exactly as in the
        paper's Markov model); the correspondent is uniform too.
        """
        total_update = total_stretch = total_state = 0.0
        for _ in range(steps):
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            corr = rng.choice(self._nodes)
            m = self.evaluate_move(old, new, corr)
            total_update += m.update_fraction
            total_stretch += m.path_stretch
            total_state += m.routers_with_state
        return ArchitectureMetrics(
            update_fraction=total_update / steps,
            path_stretch=total_stretch / steps,
            routers_with_state=int(round(total_state / steps)),
        )


class IndirectionRouting(Architecture):
    """Home-agent indirection: stretch = detour via the home agent."""

    name = "indirection"

    def __init__(self, graph: Graph, home_agent: Optional[Node] = None,
                 rng: Optional[random.Random] = None):
        super().__init__(graph)
        if home_agent is None:
            chooser = rng or random.Random(0)
            home_agent = chooser.choice(self._nodes)
        if home_agent not in graph:
            raise ValueError(f"home agent {home_agent!r} not in topology")
        self.home_agent = home_agent

    def evaluate_move(
        self, old_router: Node, new_router: Node, correspondent: Node
    ) -> ArchitectureMetrics:
        dist_h = self._distances(self.home_agent)
        dist_c = self._distances(correspondent)
        # Additive stretch: C->H->M versus C->M. The paper measures the
        # H->M displacement as the (lower-bound) stretch proxy (§5.1.1
        # defines stretch as the hop distance from home agent to the
        # endpoint), so we report dist(H, M).
        stretch = float(dist_h[new_router])
        # One update: the home agent learns the new address. As a
        # fraction of the n routers (Table 1's aggregate view): 1/n.
        return ArchitectureMetrics(
            update_fraction=1.0 / self._n,
            path_stretch=stretch,
            routers_with_state=1,  # only the home agent tracks u
        )

    # -- fault tolerance (repro.faults) --------------------------------

    def active_agent_at(
        self,
        now: float,
        faults: Optional[FaultSchedule],
        backup_agent: Optional[Node] = None,
        failover_delay: float = 0.0,
    ) -> Optional[Node]:
        """The agent serving the endpoint at ``now`` (None = outage).

        While the primary home agent is down, registrations and detours
        fail; ``failover_delay`` after the failure began, the backup
        agent (if configured and itself up) takes over — the Mobile-IP
        home-agent redundancy model. With no faults the primary always
        serves, which keeps the fault-free path untouched.
        """
        if faults is None or faults.empty:
            return self.home_agent
        if not faults.is_down(HOME_AGENT, self.home_agent, now):
            return self.home_agent
        if backup_agent is None:
            return None
        if backup_agent not in self._graph:
            raise ValueError(f"backup agent {backup_agent!r} not in topology")
        failed_at = faults.interval_containing(
            HOME_AGENT, self.home_agent, now
        )[0]
        if now < failed_at + failover_delay:
            return None  # still re-registering endpoints at the backup
        if faults.is_down(HOME_AGENT, backup_agent, now):
            return None
        return backup_agent

    def evaluate_move_under_faults(
        self,
        old_router: Node,
        new_router: Node,
        correspondent: Node,
        now: float,
        faults: Optional[FaultSchedule],
        backup_agent: Optional[Node] = None,
        failover_delay: float = 0.0,
    ) -> Optional[ArchitectureMetrics]:
        """:meth:`evaluate_move` against whichever agent is live at
        ``now`` — None while no agent serves (the endpoint is
        unreachable). Empty-schedule calls delegate to the pristine
        fault-free path bit-for-bit.
        """
        if faults is None or faults.empty:
            return self.evaluate_move(old_router, new_router, correspondent)
        agent = self.active_agent_at(now, faults, backup_agent, failover_delay)
        if agent is None:
            return None
        dist_a = self._distances(agent)
        return ArchitectureMetrics(
            update_fraction=1.0 / self._n,
            path_stretch=float(dist_a[new_router]),
            routers_with_state=1,
        )

    def full_detour_stretch(
        self, correspondent: Node, current: Node
    ) -> float:
        """The triangle-routing view: C->H->M minus C->M (additive)."""
        dist_c = self._distances(correspondent)
        dist_h = self._distances(self.home_agent)
        return float(
            dist_c[self.home_agent] + dist_h[current] - dist_c[current]
        )

    def expected_metrics(
        self, steps: int, rng: random.Random
    ) -> ArchitectureMetrics:
        """As in the base class, but re-drawing the home agent each
        trial — §5.1.1 averages over a *randomly chosen* home agent."""
        total_update = total_stretch = total_state = 0.0
        for _ in range(steps):
            self.home_agent = rng.choice(self._nodes)
            old = rng.choice(self._nodes)
            new = rng.choice(self._nodes)
            corr = rng.choice(self._nodes)
            m = self.evaluate_move(old, new, corr)
            total_update += m.update_fraction
            total_stretch += m.path_stretch
            total_state += m.routers_with_state
        return ArchitectureMetrics(
            update_fraction=total_update / steps,
            path_stretch=total_stretch / steps,
            routers_with_state=int(round(total_state / steps)),
        )


class NameResolution(Architecture):
    """DNS-style resolution: one resolver update, zero data stretch."""

    name = "name-resolution"

    def __init__(self, graph: Graph, lookup_latency_hops: float = 1.0):
        super().__init__(graph)
        self.lookup_latency_hops = lookup_latency_hops
        self.resolver_updates = 0

    def evaluate_move(
        self, old_router: Node, new_router: Node, correspondent: Node
    ) -> ArchitectureMetrics:
        self.resolver_updates += 1
        # The resolver is extra-network: no router updates at all, and
        # the data path follows underlying shortest-path routing.
        return ArchitectureMetrics(
            update_fraction=0.0,
            path_stretch=0.0,
            routers_with_state=0,
        )


class NameBasedRouting(Architecture):
    """Pure name-based routing with shortest-path forwarding tables.

    Every router keeps a next-hop entry per endpoint name; an event
    updates every router whose next hop toward the endpoint changed
    (§5.1.2). With ``default_route_leaves=True``, stub routers with a
    single upstream install a default route instead of per-name
    entries, so only the non-leaf routers count — the convention under
    which the §5 star topology costs ``1/(n+1)`` rather than
    ``3/(n+1)``.
    """

    name = "name-based"

    def __init__(self, graph: Graph, default_route_leaves: bool = False):
        super().__init__(graph)
        self.default_route_leaves = default_route_leaves
        self._next_hops: Dict[Node, Dict[Node, Node]] = {}

    def _nh(self, router: Node) -> Dict[Node, Node]:
        if router not in self._next_hops:
            self._next_hops[router] = self._graph.next_hops_fast(router)
        return self._next_hops[router]

    def _counts_for_updates(self, router: Node) -> bool:
        if not self.default_route_leaves:
            return True
        return self._graph.degree(router) > 1

    def evaluate_move(
        self, old_router: Node, new_router: Node, correspondent: Node
    ) -> ArchitectureMetrics:
        updated = 0
        holders = 0
        for router in self._nodes:
            if not self._counts_for_updates(router):
                continue
            holders += 1
            nh = self._nh(router)
            if nh.get(old_router) != nh.get(new_router):
                updated += 1
        return ArchitectureMetrics(
            update_fraction=updated / self._n,
            path_stretch=0.0,  # tables always track shortest paths
            routers_with_state=holders,
        )
