"""The §3.3.3 cost triangle: updates vs. table size vs. traffic.

§3.3.3 observes that update cost, forwarding table size, and
forwarding-plane traffic are *fungible*: a strategy can buy lower
update cost by keeping more state and forwarding more copies. The
paper's model "implicitly focuses on control plane costs"; this module
completes the triangle so the ablation bench can quantify all three
corners for every strategy:

* **update cost** — fraction of mobility events changing router state
  (§3.3.1, as elsewhere);
* **forwarding traffic** — expected packet copies sent per forwarded
  packet: 1 for best-port, the size of the *current* eligible port set
  for controlled flooding, and the size of the *accumulated* port set
  for union flooding;
* **table size** — (name, port) state entries held by the router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..measurement.vantage import ContentMeasurement
from ..routing import RoutingOracle, VantagePoint
from .evaluator import ContentUpdateCostEvaluator
from .strategies import ContentPortMapper, ForwardingStrategy

__all__ = ["StrategyCosts", "TradeoffResult", "evaluate_tradeoff"]


@dataclass(frozen=True)
class StrategyCosts:
    """The three §3.3.3 costs of one strategy at one router."""

    strategy: ForwardingStrategy
    router: str
    update_rate: float
    avg_copies_per_packet: float
    table_entries: int


@dataclass
class TradeoffResult:
    """All strategies x all routers."""

    costs: List[StrategyCosts]
    num_events: int
    num_names: int

    def for_strategy(self, strategy: ForwardingStrategy) -> List[StrategyCosts]:
        """The per-router costs of one strategy."""
        return [c for c in self.costs if c.strategy is strategy]

    def at(self, strategy: ForwardingStrategy, router: str) -> StrategyCosts:
        """The cost triple for one (strategy, router) pair."""
        for c in self.costs:
            if c.strategy is strategy and c.router == router:
                return c
        raise KeyError((strategy, router))


def _time_averaged_port_sets(
    mapper: ContentPortMapper,
    measurement: ContentMeasurement,
    accumulate: bool,
) -> Dict[str, float]:
    """Average eligible-port-set size per name, weighted by residence time.

    With ``accumulate=True`` the port set is the running union (the
    union-flooding data plane); otherwise it is the instantaneous set.
    Returns {"copies": time-averaged copies, "entries": final entries}.
    """
    total_hours = 0.0
    weighted_copies = 0.0
    entries = 0
    for name in measurement.names():
        timeline = measurement.timeline(name)
        union_ports: set = set()
        prev_hour = 0
        current_ports = mapper.eligible_ports(timeline.set_at(0))
        union_ports |= current_ports
        events = timeline.events()
        for event in events + [None]:
            end_hour = timeline.total_hours if event is None else event.hour
            span = end_hour - prev_hour
            size = len(union_ports) if accumulate else len(current_ports)
            weighted_copies += span * size
            total_hours += span
            if event is None:
                break
            prev_hour = event.hour
            current_ports = mapper.eligible_ports(event.new_addrs)
            union_ports |= current_ports
        entries += len(union_ports) if accumulate else len(current_ports)
    return {
        "copies": weighted_copies / total_hours if total_hours else 0.0,
        "entries": float(entries),
    }


def evaluate_tradeoff(
    routers: List[VantagePoint],
    oracle: RoutingOracle,
    measurement: ContentMeasurement,
) -> TradeoffResult:
    """Quantify all three §3.3.3 costs for all three strategies."""
    evaluator = ContentUpdateCostEvaluator(routers, oracle)
    reports = {
        strategy: evaluator.evaluate(measurement, strategy)
        for strategy in ForwardingStrategy
    }
    costs: List[StrategyCosts] = []
    names = measurement.names()
    for router in routers:
        mapper = ContentPortMapper(router, oracle)
        flooding_stats = _time_averaged_port_sets(
            mapper, measurement, accumulate=False
        )
        union_stats = _time_averaged_port_sets(
            mapper, measurement, accumulate=True
        )
        per_strategy = {
            ForwardingStrategy.BEST_PORT: (1.0, float(len(names))),
            ForwardingStrategy.CONTROLLED_FLOODING: (
                flooding_stats["copies"],
                flooding_stats["entries"],
            ),
            ForwardingStrategy.UNION_FLOODING: (
                union_stats["copies"],
                union_stats["entries"],
            ),
        }
        for strategy, (copies, entries) in per_strategy.items():
            costs.append(
                StrategyCosts(
                    strategy=strategy,
                    router=router.name,
                    update_rate=reports[strategy].rates[router.name],
                    avg_copies_per_packet=copies,
                    table_entries=int(entries),
                )
            )
    return TradeoffResult(
        costs=costs,
        num_events=reports[ForwardingStrategy.BEST_PORT].num_events,
        num_names=len(names),
    )
