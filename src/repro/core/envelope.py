"""Back-of-the-envelope calculators (§6.2 and §7.3).

The paper closes both evaluation sections by scaling the measured
per-event update probabilities to Internet size:

* §6.2 — "if 2 billion smartphones change network addresses three
  (seven) times per day like our median (mean) user, and 3% of these
  mobility events induce an update at a router, the corresponding
  update rate is 2.1K/sec (4.8K/sec)", plus "a typical router would
  have to maintain extra forwarding entries for ~1% of all devices";
* §7.3 — "if we assume 1B content domain names, ... an update rate of
  2/day, and a 0.5% likelihood of inducing an update at a router, the
  router would receive at most 100 updates/sec".

These are deliberately simple multiplications; encoding them as
functions keeps the bench output traceable to the paper's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "router_updates_per_second",
    "extra_fib_fraction",
    "EnvelopeScenario",
    "DEVICE_SCENARIO_MEDIAN",
    "DEVICE_SCENARIO_MEAN",
    "CONTENT_SCENARIO",
]

SECONDS_PER_DAY = 86_400.0


def router_updates_per_second(
    num_principals: float,
    moves_per_day: float,
    update_probability: float,
) -> float:
    """Expected update arrivals per second at one router.

    ``num_principals`` devices (or content names) each move
    ``moves_per_day`` times; each move induces an update at the router
    with ``update_probability``.
    """
    if num_principals < 0 or moves_per_day < 0:
        raise ValueError("counts must be non-negative")
    if not 0.0 <= update_probability <= 1.0:
        raise ValueError(f"bad probability: {update_probability}")
    return num_principals * moves_per_day * update_probability / SECONDS_PER_DAY


def extra_fib_fraction(
    update_probability: float, fraction_of_day_away: float
) -> float:
    """§6.2: fraction of devices needing an extra entry at a router.

    A device is displaced w.r.t. the router with ``update_probability``
    whenever it is away from its dominant location, which happens
    ``fraction_of_day_away`` of the time: 3% x 30% ~= 1%.
    """
    if not 0.0 <= update_probability <= 1.0:
        raise ValueError(f"bad probability: {update_probability}")
    if not 0.0 <= fraction_of_day_away <= 1.0:
        raise ValueError(f"bad fraction: {fraction_of_day_away}")
    return update_probability * fraction_of_day_away


@dataclass(frozen=True)
class EnvelopeScenario:
    """A named back-of-the-envelope scenario."""

    label: str
    num_principals: float
    moves_per_day: float
    update_probability: float
    paper_claim_per_sec: float

    def updates_per_second(self) -> float:
        """The computed update rate for this scenario."""
        return router_updates_per_second(
            self.num_principals, self.moves_per_day, self.update_probability
        )


#: §6.2, median user: 2B phones x 3 moves/day x 3% -> ~2.1K/sec.
DEVICE_SCENARIO_MEDIAN = EnvelopeScenario(
    label="devices (median user)",
    num_principals=2e9,
    moves_per_day=3,
    update_probability=0.03,
    paper_claim_per_sec=2100.0,
)

#: §6.2, mean user: 2B phones x 7 moves/day x 3% -> ~4.8K/sec.
DEVICE_SCENARIO_MEAN = EnvelopeScenario(
    label="devices (mean user)",
    num_principals=2e9,
    moves_per_day=7,
    update_probability=0.03,
    paper_claim_per_sec=4800.0,
)

#: §7.3: 1B names x 2 moves/day x 0.5% -> "at most 100 updates/sec".
CONTENT_SCENARIO = EnvelopeScenario(
    label="content names",
    num_principals=1e9,
    moves_per_day=2,
    update_probability=0.005,
    paper_claim_per_sec=100.0,
)
