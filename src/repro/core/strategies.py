"""Forwarding strategies for multihomed content (§3.3).

For a domain ``d`` with address set ``Addrs(d, t)``, a content router's
eligible output ports ``FIB(R, d, t)`` are the ports of the routes to
each address. Two strategies from the paper, plus the §3.3.3 extension:

* **best-port forwarding** — forward on the single best eligible port;
  a mobility event costs an update iff ``best(FIB(R,d,t))`` changes;
* **controlled flooding** — forward on every eligible port; an event
  costs an update iff the *set* ``FIB(R,d,t)`` changes;
* **union flooding** (§3.3.3) — compute the port set over the union of
  all addresses *ever* observed: update cost decays towards zero for
  content that flits between previously-visited locations, at the
  price of a growing port set (forwarding traffic and table size).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Optional, Set

from ..net import ContentName, IPv4Address, IPv4Prefix
from ..routing import Route, RoutingOracle, VantagePoint, rank_key

__all__ = [
    "ForwardingStrategy",
    "ContentPortMapper",
    "UnionFloodingState",
]


class ForwardingStrategy(enum.Enum):
    """Which §3.3 forwarding strategy a content router runs."""

    BEST_PORT = "best-port"
    CONTROLLED_FLOODING = "controlled-flooding"
    UNION_FLOODING = "union-flooding"


class ContentPortMapper:
    """Projects address sets onto ports at one vantage router.

    Routes are cached per covering prefix — content addresses cluster
    into a modest number of prefixes (CDN pools, hosting farms), so the
    cache turns a full content evaluation from millions of BGP
    computations into thousands.
    """

    def __init__(self, vantage: VantagePoint, oracle: RoutingOracle):
        self.vantage = vantage
        self._oracle = oracle
        self._route_cache: Dict[IPv4Prefix, Optional[Route]] = {}
        self._addr_cache: Dict[IPv4Address, Optional[Route]] = {}

    def best_route_for_address(self, address: IPv4Address) -> Optional[Route]:
        """The top-ranked RIB route covering ``address``."""
        if address in self._addr_cache:
            return self._addr_cache[address]
        prefix = self._oracle.topology.covering_prefix(address)
        if prefix is None:
            route = None
        else:
            if prefix not in self._route_cache:
                self._route_cache[prefix] = self.vantage.fib_best(
                    self._oracle, prefix
                )
            route = self._route_cache[prefix]
        self._addr_cache[address] = route
        return route

    def routes_for_addresses(self, addrs):
        """Best routes for a batch of addresses, in given order.

        Returns ``[Optional[Route], ...]`` aligned with ``addrs``,
        filling the same per-address/per-prefix caches the scalar path
        uses — the gather step the vectorized content evaluator turns
        into rank/port arrays.
        """
        return [self.best_route_for_address(addr) for addr in addrs]

    def eligible_ports(
        self, addrs: Iterable[IPv4Address]
    ) -> FrozenSet[int]:
        """``FIB(R, d, t)``: ports of the routes to every address."""
        ports: Set[int] = set()
        for addr in addrs:
            route = self.best_route_for_address(addr)
            if route is not None:
                ports.add(route.next_hop)
        return frozenset(ports)

    def best_port(self, addrs: Iterable[IPv4Address]) -> Optional[int]:
        """``best(FIB(R, d, t))``: the port of the best route overall.

        The best eligible port is the one whose route ranks highest
        under the §6.2.1 decision process across all the addresses.
        """
        best: Optional[Route] = None
        for addr in addrs:
            route = self.best_route_for_address(addr)
            if route is None:
                continue
            if best is None or rank_key(route) < rank_key(best):
                best = route
        return None if best is None else best.next_hop

    def update_for_event(
        self,
        strategy: ForwardingStrategy,
        old_addrs: FrozenSet[IPv4Address],
        new_addrs: FrozenSet[IPv4Address],
        union_state: Optional["UnionFloodingState"] = None,
        name: Optional[ContentName] = None,
    ) -> bool:
        """§3.3.1 update cost of one mobility event (1 -> True)."""
        if strategy is ForwardingStrategy.BEST_PORT:
            return self.best_port(old_addrs) != self.best_port(new_addrs)
        if strategy is ForwardingStrategy.CONTROLLED_FLOODING:
            return self.eligible_ports(old_addrs) != self.eligible_ports(
                new_addrs
            )
        if strategy is ForwardingStrategy.UNION_FLOODING:
            if union_state is None or name is None:
                raise ValueError(
                    "union flooding needs a UnionFloodingState and a name"
                )
            return union_state.observe(self, name, new_addrs)
        raise ValueError(f"unknown strategy: {strategy!r}")


class UnionFloodingState:
    """Per-router state for the §3.3.3 union-of-past-addresses strategy.

    The router remembers every address ever seen per name; an event
    costs an update only if it enlarges the port set of that union —
    revisits are free.
    """

    def __init__(self) -> None:
        self._addr_union: Dict[ContentName, Set[IPv4Address]] = {}
        self._port_union: Dict[ContentName, FrozenSet[int]] = {}

    def observe(
        self,
        mapper: ContentPortMapper,
        name: ContentName,
        addrs: FrozenSet[IPv4Address],
    ) -> bool:
        """Fold ``addrs`` into the union; True if the port set changed."""
        union = self._addr_union.setdefault(name, set())
        before = self._port_union.get(name, frozenset())
        new_addrs = addrs - union
        if not new_addrs:
            return False
        union |= new_addrs
        after = before | mapper.eligible_ports(new_addrs)
        self._port_union[name] = after
        return after != before

    def port_set(self, name: ContentName) -> FrozenSet[int]:
        """The accumulated eligible port set for ``name``."""
        return self._port_union.get(name, frozenset())

    def table_size(self) -> int:
        """Total accumulated (name, port) state — the cost side."""
        return sum(len(ports) for ports in self._port_union.values())

    def address_union_size(self, name: ContentName) -> int:
        """How many distinct addresses have been folded in for ``name``."""
        return len(self._addr_union.get(name, ()))
