"""Hybrid architectures (§8's open question, and the paper's conclusion).

The paper stops at three *pure* strategies and concludes that
name-based routing "may need to be augmented with addressing-assisted
approaches" to handle device mobility. This module builds that
augmentation so the ablation bench can quantify it: a network that
routes *content* names directly (they move rarely and aggregate) while
handling *device* names through an indirection point or a resolver
(one update per move, no router churn) — the custodian/indirection
design sketched in [27]/[30] of the paper.

The evaluation runs over the same shortest-path topology + random-hop
mobility model as §5, with a workload mixing device and content
mobility events at a configurable ratio and per-class mobility rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List

from ..topology import Graph
from .architectures import (
    IndirectionRouting,
    NameBasedRouting,
    NameResolution,
)

__all__ = ["MixedWorkloadMetrics", "HybridEvaluation", "evaluate_hybrid"]

Node = Hashable


@dataclass(frozen=True)
class MixedWorkloadMetrics:
    """Costs of one architecture under a mixed device+content workload."""

    architecture: str
    #: Mean fraction of routers updated per mobility event (any kind).
    update_fraction: float
    #: Mean additive path stretch experienced by *device* traffic.
    device_stretch: float
    #: Mean additive path stretch experienced by *content* traffic.
    content_stretch: float
    #: Resolver/home-agent updates per event (the off-router cost).
    agent_updates_per_event: float


@dataclass
class HybridEvaluation:
    """Results for the three pure architectures and the hybrid."""

    metrics: List[MixedWorkloadMetrics]
    device_share: float
    steps: int

    def by_name(self, name: str) -> MixedWorkloadMetrics:
        for m in self.metrics:
            if m.architecture == name:
                return m
        raise KeyError(name)


def evaluate_hybrid(
    graph: Graph,
    device_share: float = 0.8,
    steps: int = 4000,
    seed: int = 2014,
) -> HybridEvaluation:
    """Compare pure and hybrid architectures on a mixed workload.

    ``device_share`` is the fraction of mobility events that are device
    moves (the paper measures device mobility to be far more frequent
    and far less router-friendly than content mobility). The hybrid
    routes content on names and devices through indirection.
    """
    if not 0.0 <= device_share <= 1.0:
        raise ValueError(f"bad device share: {device_share}")
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)

    name_based = NameBasedRouting(graph)
    indirection = IndirectionRouting(graph, home_agent=nodes[0])
    resolution = NameResolution(graph)

    accum: Dict[str, Dict[str, float]] = {
        name: {"update": 0.0, "dev_stretch": 0.0, "con_stretch": 0.0,
               "agent": 0.0}
        for name in ("name-based", "indirection", "name-resolution", "hybrid")
    }
    device_events = content_events = 0
    for _ in range(steps):
        old = rng.choice(nodes)
        new = rng.choice(nodes)
        corr = rng.choice(nodes)
        home = rng.choice(nodes)
        indirection.home_agent = home
        is_device = rng.random() < device_share
        if is_device:
            device_events += 1
        else:
            content_events += 1

        nb = name_based.evaluate_move(old, new, corr)
        ind = indirection.evaluate_move(old, new, corr)
        resolution.evaluate_move(old, new, corr)

        # Pure name-based: every event (device or content) updates
        # routers; no stretch for anyone.
        accum["name-based"]["update"] += nb.update_fraction

        # Pure indirection: one agent update; everyone detours.
        accum["indirection"]["agent"] += 1.0
        if is_device:
            accum["indirection"]["dev_stretch"] += ind.path_stretch
        else:
            accum["indirection"]["con_stretch"] += ind.path_stretch

        # Pure resolution: one resolver update; no stretch, plus a
        # lookup RTT at connection setup (not modelled as stretch).
        accum["name-resolution"]["agent"] += 1.0

        # Hybrid: content moves are handled by name-based routing
        # (cheap: content moves are the rare share), device moves go
        # through the indirection point (no router updates, but device
        # traffic detours).
        if is_device:
            accum["hybrid"]["agent"] += 1.0
            accum["hybrid"]["dev_stretch"] += ind.path_stretch
        else:
            accum["hybrid"]["update"] += nb.update_fraction

    def build(name: str) -> MixedWorkloadMetrics:
        a = accum[name]
        return MixedWorkloadMetrics(
            architecture=name,
            update_fraction=a["update"] / steps,
            device_stretch=a["dev_stretch"] / max(device_events, 1),
            content_stretch=a["con_stretch"] / max(content_events, 1),
            agent_updates_per_event=a["agent"] / steps,
        )

    return HybridEvaluation(
        metrics=[build(n) for n in accum],
        device_share=device_share,
        steps=steps,
    )
