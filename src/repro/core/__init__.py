"""The paper's core contribution: architecture models, the displacement
methodology, forwarding strategies, update-cost evaluation,
aggregateability, the §5 analytic model, and the back-of-the-envelope
calculators."""

from .aggregate import (
    aggregateability,
    complete_forwarding_table,
    lpm_forwarding_table,
    router_aggregateability,
)
from .analytic import (
    TOPOLOGY_KINDS,
    Table1Row,
    closed_form_row,
    exact_indirection_stretch,
    exact_name_based_update_cost,
    expected_pairwise_distance,
    paper_asymptotic_row,
    simulate_row,
)
from .architectures import (
    Architecture,
    ArchitectureMetrics,
    IndirectionRouting,
    NameBasedRouting,
    NameResolution,
)
from .displacement import (
    InterdomainPortMap,
    interdomain_displaced,
    intradomain_displaced,
)
from .envelope import (
    CONTENT_SCENARIO,
    DEVICE_SCENARIO_MEAN,
    DEVICE_SCENARIO_MEDIAN,
    EnvelopeScenario,
    extra_fib_fraction,
    router_updates_per_second,
)
from .evaluator import (
    ContentUpdateCostEvaluator,
    DeviceUpdateCostEvaluator,
    FaultToleranceEvaluator,
    MobilityTimeline,
    UpdateRateReport,
    pearson_correlation,
    per_day_update_rates,
)
from .compact import CompactRoutingScheme, CompactStats
from .hybrid import HybridEvaluation, MixedWorkloadMetrics, evaluate_hybrid
from .strategies import (
    ContentPortMapper,
    ForwardingStrategy,
    UnionFloodingState,
)
from .tradeoff import StrategyCosts, TradeoffResult, evaluate_tradeoff

__all__ = [
    "Architecture",
    "ArchitectureMetrics",
    "IndirectionRouting",
    "NameResolution",
    "NameBasedRouting",
    "intradomain_displaced",
    "InterdomainPortMap",
    "interdomain_displaced",
    "ForwardingStrategy",
    "ContentPortMapper",
    "UnionFloodingState",
    "UpdateRateReport",
    "DeviceUpdateCostEvaluator",
    "ContentUpdateCostEvaluator",
    "FaultToleranceEvaluator",
    "MobilityTimeline",
    "per_day_update_rates",
    "pearson_correlation",
    "complete_forwarding_table",
    "lpm_forwarding_table",
    "aggregateability",
    "router_aggregateability",
    "Table1Row",
    "TOPOLOGY_KINDS",
    "closed_form_row",
    "paper_asymptotic_row",
    "simulate_row",
    "exact_indirection_stretch",
    "exact_name_based_update_cost",
    "expected_pairwise_distance",
    "CompactRoutingScheme",
    "CompactStats",
    "HybridEvaluation",
    "MixedWorkloadMetrics",
    "evaluate_hybrid",
    "StrategyCosts",
    "TradeoffResult",
    "evaluate_tradeoff",
    "EnvelopeScenario",
    "router_updates_per_second",
    "extra_fib_fraction",
    "DEVICE_SCENARIO_MEDIAN",
    "DEVICE_SCENARIO_MEAN",
    "CONTENT_SCENARIO",
]
