"""The §5 analytic model: path stretch vs. update cost on toy topologies.

Table 1 of the paper:

    Topology     Indirection            Name-based routing
                 stretch   update cost  stretch  update cost
    Chain        n/3       1/n          0        1/3
    Clique       1         1/n          0        1
    Binary tree  2 log2 n  1/n          0        2 log2 n / (n-1)
    Star         2         1/n          0        1/(n+1)

This module provides (a) *exact* closed forms under the paper's
discrete-time Markov mobility model (old and new locations independent
uniform draws, so self-moves occur with probability 1/n), (b) the
paper's asymptotic expressions as printed in Table 1, and (c) a Monte
Carlo simulator over the actual topologies that the tests check the
closed forms against.

Conventions (matching the paper's derivations):

* Indirection stretch is the expected hop distance from a uniformly
  random home agent to the endpoint's location (§5.1.1).
* Name-based update cost is the expected fraction of routers whose
  next hop toward the endpoint changes per mobility event (§5.1.2).
* For the star, endpoint-facing leaf routers carry a default route, so
  only the hub holds per-endpoint entries (hence 1/(n+1) and not
  3/(n+1)); ``n`` counts the leaves and the hub is the (n+1)-th router.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..topology import (
    Graph,
    binary_tree_topology,
    chain_topology,
    clique_topology,
    star_topology,
)
from .architectures import IndirectionRouting, NameBasedRouting

__all__ = [
    "Table1Row",
    "TOPOLOGY_KINDS",
    "exact_indirection_stretch",
    "exact_name_based_update_cost",
    "closed_form_row",
    "paper_asymptotic_row",
    "simulate_row",
    "expected_pairwise_distance",
]

TOPOLOGY_KINDS = ("chain", "clique", "binary-tree", "star")


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (values for a given n)."""

    topology: str
    n: int
    indirection_stretch: float
    indirection_update_cost: float
    name_based_stretch: float
    name_based_update_cost: float


def _build(kind: str, n: int) -> Graph:
    if kind == "chain":
        return chain_topology(n)
    if kind == "clique":
        return clique_topology(n)
    if kind == "binary-tree":
        return binary_tree_topology(n)
    if kind == "star":
        return star_topology(n)
    raise ValueError(f"unknown topology kind: {kind!r}")


def expected_pairwise_distance(graph: Graph) -> float:
    """E[dist(u, v)] for independent uniform u, v (self-pairs included)."""
    nodes = list(graph.nodes())
    n = len(nodes)
    total = 0
    for u in nodes:
        dist = graph.bfs_distances(u)
        total += sum(dist[v] for v in nodes)
    return total / (n * n)


def exact_indirection_stretch(kind: str, n: int) -> float:
    """Exact E[dist(H, L)] with H, L independent uniform."""
    if kind == "chain":
        # §5.1.1: (n^2 - 1) / (3n).
        return (n * n - 1) / (3.0 * n)
    if kind == "clique":
        return (n - 1) / n
    if kind == "star":
        # Endpoints live at the n leaves; dist is 2 unless H == L.
        return 2.0 * (n - 1) / n
    if kind == "binary-tree":
        return expected_pairwise_distance(_build(kind, n))
    raise ValueError(f"unknown topology kind: {kind!r}")


def exact_name_based_update_cost(kind: str, n: int) -> float:
    """Exact expected fraction of routers updated per mobility event."""
    if kind == "chain":
        # §5.1.2: (n^3 + 3n^2 - n) / (3 n^3) -- wait, the paper prints
        # this sum; derive it exactly from the per-router expression:
        # E[cost_k] = (k-1)(n-k+1)/n^2 + (n-1)/n^2 + (n-k)k/n^2.
        total = 0.0
        for k in range(1, n + 1):
            total += (
                (k - 1) * (n - k + 1) + (n - 1) + (n - k) * k
            ) / (n * n)
        return total / n
    if kind == "clique":
        # Every router updates whenever the endpoint actually moves.
        return (n - 1) / n
    if kind == "star":
        # Only the hub holds per-endpoint entries (leaves use default
        # routes); it updates whenever the endpoint actually moves.
        # Endpoints move among the n leaves; routers number n + 1.
        return ((n - 1) / n) / (n + 1)
    if kind == "binary-tree":
        # Routers on the old-new path update: E = (E[dist] + P(move))/n.
        graph = _build(kind, n)
        return (expected_pairwise_distance(graph) + (n - 1) / n) / n
    raise ValueError(f"unknown topology kind: {kind!r}")


def closed_form_row(kind: str, n: int) -> Table1Row:
    """Exact Table 1 row for a concrete n."""
    return Table1Row(
        topology=kind,
        n=n,
        indirection_stretch=exact_indirection_stretch(kind, n),
        indirection_update_cost=1.0 / n,
        name_based_stretch=0.0,
        name_based_update_cost=exact_name_based_update_cost(kind, n),
    )


def paper_asymptotic_row(kind: str, n: int) -> Table1Row:
    """Table 1 exactly as printed (asymptotic expressions)."""
    if kind == "chain":
        stretch, cost = n / 3.0, 1.0 / 3.0
    elif kind == "clique":
        stretch, cost = 1.0, 1.0
    elif kind == "binary-tree":
        stretch, cost = 2.0 * math.log2(n), 2.0 * math.log2(n) / (n - 1)
    elif kind == "star":
        stretch, cost = 2.0, 1.0 / (n + 1)
    else:
        raise ValueError(f"unknown topology kind: {kind!r}")
    return Table1Row(
        topology=kind,
        n=n,
        indirection_stretch=stretch,
        indirection_update_cost=1.0 / n,
        name_based_stretch=0.0,
        name_based_update_cost=cost,
    )


def simulate_row(
    kind: str, n: int, steps: int = 4000, seed: int = 2014
) -> Table1Row:
    """Monte Carlo estimate of the Table 1 row on the real topology.

    Builds the actual graph, runs the random-hop mobility model, and
    measures stretch/update cost with the architecture implementations
    — validating that the closed forms describe the system we built.
    """
    graph = _build(kind, n)
    rng = random.Random(seed)
    if kind == "star":
        # Endpoints at leaves; hub is transit-only with default-routed
        # leaves (see module docstring).
        leaves = [node for node in graph.nodes() if node != 0]
        indirection = IndirectionRouting(graph, home_agent=leaves[0])
        name_based = NameBasedRouting(graph, default_route_leaves=True)
        total_stretch = total_cost = 0.0
        for _ in range(steps):
            indirection.home_agent = rng.choice(leaves)
            old = rng.choice(leaves)
            new = rng.choice(leaves)
            corr = rng.choice(leaves)
            total_stretch += indirection.evaluate_move(
                old, new, corr
            ).path_stretch
            total_cost += name_based.evaluate_move(old, new, corr).update_fraction
        return Table1Row(
            topology=kind,
            n=n,
            indirection_stretch=total_stretch / steps,
            indirection_update_cost=1.0 / n,
            name_based_stretch=0.0,
            name_based_update_cost=total_cost / steps,
        )
    indirection = IndirectionRouting(graph, rng=rng)
    name_based = NameBasedRouting(graph)
    ind = indirection.expected_metrics(steps, rng)
    nb = name_based.expected_metrics(steps, rng)
    return Table1Row(
        topology=kind,
        n=n,
        indirection_stretch=ind.path_stretch,
        indirection_update_cost=ind.update_fraction,
        name_based_stretch=nb.path_stretch,
        name_based_update_cost=nb.update_fraction,
    )
