"""Forwarding-table aggregateability (§3.3.2, Fig. 12).

For a set of hierarchically organized names routed by some strategy,
the *complete* forwarding table has one entry per name; the *LPM*
table drops every entry subsumed by longest-prefix matching — an entry
``[d1, port]`` is subsumed when the longest remaining ancestor entry
already maps to the same port (Fig. 3: ``[travel.yahoo.com, 2]`` is
subsumed by ``[yahoo.com, 2]``, while ``[sports.yahoo.com, 5]`` must
stay).

Aggregateability = |complete| / |LPM|.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..measurement.vantage import ContentMeasurement
from ..net import ContentName, NameTrie
from ..routing import RoutingOracle, VantagePoint
from .strategies import ContentPortMapper

__all__ = [
    "complete_forwarding_table",
    "lpm_forwarding_table",
    "aggregateability",
    "router_aggregateability",
]


def complete_forwarding_table(
    mapper: ContentPortMapper,
    address_sets: Mapping[ContentName, FrozenSet],
) -> Dict[ContentName, int]:
    """Best-port forwarding entry for every name (the complete table).

    Names whose address set yields no route at this router are omitted
    — a real router cannot install an entry it has no port for.
    """
    table: Dict[ContentName, int] = {}
    for name in sorted(address_sets):
        port = mapper.best_port(address_sets[name])
        if port is not None:
            table[name] = port
    return table


def lpm_forwarding_table(
    complete: Mapping[ContentName, int],
) -> Dict[ContentName, int]:
    """Drop subsumed entries (Fig. 3), keeping LPM semantics intact.

    Names are installed shallowest-first; an entry is subsumed exactly
    when the LPM lookup over the already-kept entries returns its own
    port, so lookups over the reduced table remain identical to the
    complete table for every name in it.
    """
    trie: NameTrie[int] = NameTrie()
    kept: Dict[ContentName, int] = {}
    for name in sorted(complete, key=len):
        port = complete[name]
        match = trie.longest_match(name)
        if match is not None and match[1] == port:
            continue  # subsumed by an ancestor with the same port
        trie.insert(name, port)
        kept[name] = port
    return kept


def aggregateability(
    complete: Mapping[ContentName, int],
    lpm: Optional[Mapping[ContentName, int]] = None,
) -> float:
    """|complete| / |LPM| (1.0 for an empty table)."""
    if lpm is None:
        lpm = lpm_forwarding_table(complete)
    if not complete:
        return 1.0
    if not lpm:
        raise ValueError("non-empty complete table reduced to empty LPM table")
    return len(complete) / len(lpm)


def router_aggregateability(
    vantage: VantagePoint,
    oracle: RoutingOracle,
    measurement: ContentMeasurement,
    hour: int = 0,
) -> Tuple[float, Dict[ContentName, int], Dict[ContentName, int]]:
    """Fig. 12 for one router: aggregateability over a measured set.

    Uses each name's address set at ``hour`` with best-port forwarding.
    Returns ``(ratio, complete_table, lpm_table)``.
    """
    mapper = ContentPortMapper(vantage, oracle)
    address_sets = {
        name: measurement.timeline(name).set_at(hour)
        for name in measurement.names()
    }
    complete = complete_forwarding_table(mapper, address_sets)
    lpm = lpm_forwarding_table(complete)
    return aggregateability(complete, lpm), complete, lpm
