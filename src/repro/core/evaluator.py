"""Update-cost evaluation harness (§6.2, §7.2).

Combines a mobility workload (device transitions or content address
timelines) with a set of vantage routers and reports, per router, the
fraction of mobility events that induce a forwarding update — the
paper's *update rate* (Figs. 8 and 11b/c) — plus the sensitivity
statistics of §6.2.2 (per-day standard deviation, cross-workload
correlation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..measurement.vantage import ContentMeasurement
from ..mobility import MobilityEvent
from ..routing import RoutingOracle, VantagePoint
from .displacement import InterdomainPortMap, interdomain_displaced
from .strategies import (
    ContentPortMapper,
    ForwardingStrategy,
    UnionFloodingState,
)

__all__ = [
    "UpdateRateReport",
    "DeviceUpdateCostEvaluator",
    "ContentUpdateCostEvaluator",
    "pearson_correlation",
    "per_day_update_rates",
]


@dataclass
class UpdateRateReport:
    """Per-router update rates for one workload."""

    rates: Dict[str, float]
    num_events: int
    updates: Dict[str, int]

    def max_rate(self) -> float:
        """The most affected router's rate."""
        return max(self.rates.values()) if self.rates else 0.0

    def median_rate(self) -> float:
        """The median router's rate."""
        if not self.rates:
            return 0.0
        ordered = sorted(self.rates.values())
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def rate_of(self, router_name: str) -> float:
        """One router's update rate."""
        return self.rates[router_name]


class DeviceUpdateCostEvaluator:
    """Fig. 8: fraction of device mobility events updating each router."""

    def __init__(self, routers: Sequence[VantagePoint], oracle: RoutingOracle):
        if not routers:
            raise ValueError("need at least one vantage router")
        self._port_maps = [InterdomainPortMap(r, oracle) for r in routers]

    def evaluate(self, events: Iterable[MobilityEvent]) -> UpdateRateReport:
        """Per-router update rate over ``events``."""
        updates = {pm.vantage.name: 0 for pm in self._port_maps}
        count = 0
        for event in events:
            count += 1
            for pm in self._port_maps:
                if interdomain_displaced(pm, event):
                    updates[pm.vantage.name] += 1
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)


class ContentUpdateCostEvaluator:
    """Fig. 11(b)/(c): content mobility update rates per strategy."""

    def __init__(self, routers: Sequence[VantagePoint], oracle: RoutingOracle):
        if not routers:
            raise ValueError("need at least one vantage router")
        self._mappers = [ContentPortMapper(r, oracle) for r in routers]

    def evaluate(
        self,
        measurement: ContentMeasurement,
        strategy: ForwardingStrategy,
    ) -> UpdateRateReport:
        """Per-router update rate over every event in ``measurement``.

        Events are replayed *incrementally*: each timeline's port
        profile is maintained as a counter and only the addresses an
        event actually added or removed are re-projected, which turns
        the full popular-set evaluation from hours into seconds while
        computing exactly the §3.3.1 definitions.
        """
        updates = {m.vantage.name: 0 for m in self._mappers}
        union_states: Dict[str, UnionFloodingState] = {
            m.vantage.name: UnionFloodingState() for m in self._mappers
        }
        count = 0
        for name in measurement.names():
            timeline = measurement.timeline(name)
            events = timeline.events()
            count += len(events)
            for mapper in self._mappers:
                router = mapper.vantage.name
                if strategy is ForwardingStrategy.UNION_FLOODING:
                    # Seed the union with the initial address set so
                    # only genuinely new locations count as updates.
                    union_states[router].observe(
                        mapper, name, timeline.set_at(0)
                    )
                    for event in events:
                        if union_states[router].observe(
                            mapper, name, event.new_addrs
                        ):
                            updates[router] += 1
                    continue
                updates[router] += self._replay_timeline(
                    mapper, timeline, events, strategy
                )
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)

    @staticmethod
    def _replay_timeline(
        mapper: ContentPortMapper,
        timeline,
        events,
        strategy: ForwardingStrategy,
    ) -> int:
        """Count best-port / flooding updates along one timeline."""
        from ..routing import rank_key

        def recompute_best(addrs):
            winner = None
            for addr in addrs:
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                if winner is None or rank_key(route) < rank_key(winner):
                    winner = route
            return winner

        port_counts: Dict[int, int] = {}
        for addr in timeline.set_at(0):
            route = mapper.best_route_for_address(addr)
            if route is None:
                continue
            port_counts[route.next_hop] = port_counts.get(route.next_hop, 0) + 1
        best = recompute_best(timeline.set_at(0))

        changed_count = 0
        for event in events:
            prev_best_port = None if best is None else best.next_hop
            prev_ports = frozenset(port_counts)
            best_removed = False
            for addr in event.removed():
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                remaining = port_counts[route.next_hop] - 1
                if remaining:
                    port_counts[route.next_hop] = remaining
                else:
                    del port_counts[route.next_hop]
                if best is not None and route == best:
                    best_removed = True
            for addr in event.added():
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                port_counts[route.next_hop] = (
                    port_counts.get(route.next_hop, 0) + 1
                )
                if not best_removed and (
                    best is None or rank_key(route) < rank_key(best)
                ):
                    best = route
            if best_removed:
                best = recompute_best(event.new_addrs)
            if strategy is ForwardingStrategy.BEST_PORT:
                new_best_port = None if best is None else best.next_hop
                if new_best_port != prev_best_port:
                    changed_count += 1
            elif frozenset(port_counts) != prev_ports:
                changed_count += 1
        return changed_count

    def union_table_sizes(
        self, measurement: ContentMeasurement
    ) -> Dict[str, int]:
        """Accumulated union-strategy state per router (the §3.3.3 cost)."""
        sizes = {}
        for mapper in self._mappers:
            state = UnionFloodingState()
            for name in measurement.names():
                timeline = measurement.timeline(name)
                state.observe(mapper, name, timeline.set_at(0))
                for event in timeline.events():
                    state.observe(mapper, name, event.new_addrs)
            sizes[mapper.vantage.name] = state.table_size()
        return sizes


def per_day_update_rates(
    evaluator: DeviceUpdateCostEvaluator,
    events: Iterable[MobilityEvent],
) -> Dict[str, List[float]]:
    """§6.2.2 sensitivity to time: update rate per router per day."""
    by_day: Dict[int, List[MobilityEvent]] = {}
    for event in events:
        by_day.setdefault(event.day, []).append(event)
    series: Dict[str, List[float]] = {}
    for day in sorted(by_day):
        report = evaluator.evaluate(by_day[day])
        for router, rate in report.rates.items():
            series.setdefault(router, []).append(rate)
    return series


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (the §6.2.2 workload comparison)."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("correlation undefined for a constant series")
    return cov / math.sqrt(vx * vy)
