"""Update-cost evaluation harness (§6.2, §7.2) and fault tolerance.

Combines a mobility workload (device transitions or content address
timelines) with a set of vantage routers and reports, per router, the
fraction of mobility events that induce a forwarding update — the
paper's *update rate* (Figs. 8 and 11b/c) — plus the sensitivity
statistics of §6.2.2 (per-day standard deviation, cross-workload
correlation).

:class:`FaultToleranceEvaluator` extends the harness to the failure
regimes of :mod:`repro.faults`: it probes all three architectures'
data paths on a fixed cadence while one shared fault schedule plays
out, producing the graceful-degradation metrics (availability,
outage-duration CDFs, stale-delivery fraction, recovery time) that the
paper's §8 names but could not measure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..faults import (
    HOME_AGENT,
    AvailabilityTrace,
    DegradationReport,
    FaultSchedule,
    MessageLossModel,
    RetryPolicy,
)
from ..forwarding.convergence import DEFAULT_RETRANSMIT, ConvergenceSimulator
from ..measurement.vantage import ContentMeasurement
from ..mobility import MobilityEvent
from ..resolution import NameResolutionService, RetryingResolver
from ..routing import RoutingOracle, VantagePoint
from ..stats import median
from ..topology import Graph
from ..workload import DeviceEventColumns, require_numpy, scalar_mode
from ..workload.columns import unique_with_inverse
from .architectures import IndirectionRouting
from .displacement import InterdomainPortMap, interdomain_displaced
from .strategies import (
    ContentPortMapper,
    ForwardingStrategy,
    UnionFloodingState,
)

np = require_numpy()

__all__ = [
    "UpdateRateReport",
    "DeviceUpdateCostEvaluator",
    "ContentUpdateCostEvaluator",
    "pearson_correlation",
    "per_day_update_rates",
    "MobilityTimeline",
    "FaultToleranceEvaluator",
]

Node = Hashable


@dataclass
class UpdateRateReport:
    """Per-router update rates for one workload."""

    rates: Dict[str, float]
    num_events: int
    updates: Dict[str, int]

    def max_rate(self) -> float:
        """The most affected router's rate."""
        return max(self.rates.values()) if self.rates else 0.0

    def median_rate(self) -> float:
        """The median router's rate."""
        if not self.rates:
            return 0.0
        return median(list(self.rates.values()))

    def rate_of(self, router_name: str) -> float:
        """One router's update rate."""
        return self.rates[router_name]


class DeviceUpdateCostEvaluator:
    """Fig. 8: fraction of device mobility events updating each router.

    Accepts either an iterable of :class:`MobilityEvent` or a
    :class:`~repro.workload.DeviceEventColumns` batch. The default path
    vectorizes over the event axis (unique-address prefix interning,
    one next-hop LUT gather per router); setting ``REPRO_SCALAR=1``
    forces the original per-event loop, which serves as the parity
    oracle — both paths produce bit-identical reports and ledger
    digests.
    """

    def __init__(self, routers: Sequence[VantagePoint], oracle: RoutingOracle):
        if not routers:
            raise ValueError("need at least one vantage router")
        self._oracle = oracle
        self._port_maps = [InterdomainPortMap(r, oracle) for r in routers]

    def evaluate(self, events: Iterable[MobilityEvent]) -> UpdateRateReport:
        """Per-router update rate over ``events``."""
        if scalar_mode():
            return self._evaluate_scalar(events)
        columns = self._as_columns(events)
        count = len(columns)
        with obs.span("evaluator.batch.device"):
            obs.incr("evaluator.batch.device.events", count)
            flags = self._update_flags(columns)
            updates = {
                pm.vantage.name: int(np.count_nonzero(flag))
                for pm, flag in zip(self._port_maps, flags)
            }
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)

    def _evaluate_scalar(
        self, events: Iterable[MobilityEvent]
    ) -> UpdateRateReport:
        """The per-event reference path (``REPRO_SCALAR=1``)."""
        updates = {pm.vantage.name: 0 for pm in self._port_maps}
        count = 0
        for event in events:
            count += 1
            for pm in self._port_maps:
                if interdomain_displaced(pm, event):
                    updates[pm.vantage.name] += 1
        obs.incr("evaluator.scalar.device.events", count)
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)

    # -- columnar internals --------------------------------------------

    @staticmethod
    def _as_columns(events) -> DeviceEventColumns:
        """Events in columnar form (no-op if already a batch)."""
        if isinstance(events, DeviceEventColumns):
            return events
        return DeviceEventColumns.from_events(events)

    def _prefix_ids(self, columns: DeviceEventColumns):
        """Intern covering prefixes over the batch's unique addresses.

        Returns ``(prefixes, old_pid, new_pid)``: the distinct covering
        prefixes touched by the batch, and per-event prefix ids for the
        old/new address (-1 when no announced prefix covers it). Each
        unique address resolves its prefix exactly once, however many
        events revisit it.
        """
        from ..net import IPv4Address

        cols = columns.as_columns()
        all_ips = np.concatenate([cols.from_ip, cols.to_ip])
        uniq_ips, inverse = unique_with_inverse(all_ips)
        topology = self._oracle.topology
        prefixes: List = []
        prefix_index: Dict = {}
        ip_pid = np.empty(len(uniq_ips), dtype=np.int64)
        for i, value in enumerate(uniq_ips.tolist()):
            prefix = topology.covering_prefix(IPv4Address(int(value)))
            if prefix is None:
                ip_pid[i] = -1
                continue
            pid = prefix_index.get(prefix)
            if pid is None:
                pid = prefix_index[prefix] = len(prefixes)
                prefixes.append(prefix)
            ip_pid[i] = pid
        n = len(columns)
        return prefixes, ip_pid[inverse[:n]], ip_pid[inverse[n:]]

    def _update_flags(self, columns: DeviceEventColumns) -> List:
        """Per-router boolean arrays: does event ``i`` update router ``r``?

        The vectorized §3.2 displacement test: gather old/new output
        ports through the router's prefix->port LUT and flag events
        where both ports exist and differ.
        """
        prefixes, old_pid, new_pid = self._prefix_ids(columns)
        obs.incr("evaluator.batch.device.prefixes", len(prefixes))
        flags = []
        for pm in self._port_maps:
            # Sentinel -1 appended so pid -1 gathers port -1 (no route).
            lut = np.concatenate(
                [pm.port_table(prefixes), np.array([-1], dtype=np.int64)]
            )
            old_port = lut[old_pid]
            new_port = lut[new_pid]
            flags.append(
                (old_port >= 0) & (new_port >= 0) & (old_port != new_port)
            )
        return flags


class ContentUpdateCostEvaluator:
    """Fig. 11(b)/(c): content mobility update rates per strategy."""

    def __init__(self, routers: Sequence[VantagePoint], oracle: RoutingOracle):
        if not routers:
            raise ValueError("need at least one vantage router")
        self._mappers = [ContentPortMapper(r, oracle) for r in routers]

    def evaluate(
        self,
        measurement: ContentMeasurement,
        strategy: ForwardingStrategy,
    ) -> UpdateRateReport:
        """Per-router update rate over every event in ``measurement``.

        The default path reduces each name's columnar ``Addrs(d, t)``
        membership matrix per router with a handful of numpy
        operations (rank gather + row minimum for best-port, a port
        one-hot product for the flooding variants). ``REPRO_SCALAR=1``
        forces the incremental per-event replay, the parity oracle —
        both paths compute exactly the §3.3.1 definitions and produce
        bit-identical reports.
        """
        if scalar_mode():
            return self._evaluate_scalar(measurement, strategy)
        updates = {m.vantage.name: 0 for m in self._mappers}
        count = 0
        with obs.span("evaluator.batch.content"):
            for name in measurement.names():
                matrix = measurement.matrix(name)
                count += matrix.num_events
                if matrix.num_events == 0:
                    continue
                for mapper in self._mappers:
                    updates[mapper.vantage.name] += self._count_updates(
                        mapper, matrix, strategy
                    )
            obs.incr("evaluator.batch.content.events", count)
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)

    def _evaluate_scalar(
        self,
        measurement: ContentMeasurement,
        strategy: ForwardingStrategy,
    ) -> UpdateRateReport:
        """The incremental per-event reference path (``REPRO_SCALAR=1``).

        Each timeline's port profile is maintained as a counter and
        only the addresses an event actually added or removed are
        re-projected.
        """
        updates = {m.vantage.name: 0 for m in self._mappers}
        union_states: Dict[str, UnionFloodingState] = {
            m.vantage.name: UnionFloodingState() for m in self._mappers
        }
        count = 0
        for name in measurement.names():
            timeline = measurement.timeline(name)
            events = timeline.events()
            count += len(events)
            for mapper in self._mappers:
                router = mapper.vantage.name
                if strategy is ForwardingStrategy.UNION_FLOODING:
                    # Seed the union with the initial address set so
                    # only genuinely new locations count as updates.
                    union_states[router].observe(
                        mapper, name, timeline.set_at(0)
                    )
                    for event in events:
                        if union_states[router].observe(
                            mapper, name, event.new_addrs
                        ):
                            updates[router] += 1
                    continue
                updates[router] += self._replay_timeline(
                    mapper, timeline, events, strategy
                )
        obs.incr("evaluator.scalar.content.events", count)
        rates = {
            name: (n / count if count else 0.0) for name, n in updates.items()
        }
        return UpdateRateReport(rates=rates, num_events=count, updates=updates)

    @staticmethod
    def _count_updates(
        mapper: ContentPortMapper, matrix, strategy: ForwardingStrategy
    ) -> int:
        """Count one router's updates along one columnar timeline.

        Parity with the incremental replay rests on two facts: equal
        :func:`~repro.routing.rank_key` implies equal next hop (the
        next hop is the key's final tiebreak), so the row-minimum rank
        determines the best port exactly as the scalar best-tracking
        does; and the flooding port set is a pure function of the
        addresses present (or ever seen, for union) in a row.
        """
        from ..routing import rank_key

        routes = mapper.routes_for_addresses(matrix.addrs)
        ports = np.array(
            [-1 if r is None else r.next_hop for r in routes], dtype=np.int64
        )
        routed = ports >= 0
        if not routed.any():
            # No address ever routed: ports stay empty/None throughout.
            return 0
        membership = matrix.membership

        if strategy is ForwardingStrategy.BEST_PORT:
            keyed = [None if r is None else rank_key(r) for r in routes]
            key_port = {
                k: int(p)
                for k, p in zip(keyed, ports.tolist())
                if k is not None
            }
            uniq_keys = sorted(key_port)
            key_rank = {k: i for i, k in enumerate(uniq_keys)}
            none_rank = len(uniq_keys)
            addr_rank = np.array(
                [none_rank if k is None else key_rank[k] for k in keyed],
                dtype=np.int64,
            )
            port_of_rank = np.array(
                [key_port[k] for k in uniq_keys] + [-1], dtype=np.int64
            )
            grid = np.where(
                membership & routed[None, :], addr_rank[None, :], none_rank
            )
            row_port = port_of_rank[grid.min(axis=1)]
            return int(np.count_nonzero(row_port[1:] != row_port[:-1]))

        # Flooding variants: project rows onto port presence via a
        # one-hot (routed address -> port) matrix. int32 accumulators —
        # a uint8 product would overflow past 255 addresses per port.
        routed_idx = np.nonzero(routed)[0]
        present = membership[:, routed_idx].astype(np.int32)
        if strategy is ForwardingStrategy.UNION_FLOODING:
            # The union of all addresses seen so far only ever grows.
            present = np.maximum.accumulate(present, axis=0)
        elif strategy is not ForwardingStrategy.CONTROLLED_FLOODING:
            raise ValueError(f"unknown strategy: {strategy!r}")
        _, port_inverse = unique_with_inverse(ports[routed_idx])
        onehot = np.zeros(
            (len(routed_idx), int(port_inverse.max()) + 1), dtype=np.int32
        )
        onehot[np.arange(len(routed_idx)), port_inverse] = 1
        port_presence = (present @ onehot) > 0
        changed = (port_presence[1:] != port_presence[:-1]).any(axis=1)
        return int(np.count_nonzero(changed))

    @staticmethod
    def _replay_timeline(
        mapper: ContentPortMapper,
        timeline,
        events,
        strategy: ForwardingStrategy,
    ) -> int:
        """Count best-port / flooding updates along one timeline."""
        from ..routing import rank_key

        def recompute_best(addrs):
            winner = None
            for addr in addrs:
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                if winner is None or rank_key(route) < rank_key(winner):
                    winner = route
            return winner

        port_counts: Dict[int, int] = {}
        for addr in timeline.set_at(0):
            route = mapper.best_route_for_address(addr)
            if route is None:
                continue
            port_counts[route.next_hop] = port_counts.get(route.next_hop, 0) + 1
        best = recompute_best(timeline.set_at(0))

        changed_count = 0
        for event in events:
            prev_best_port = None if best is None else best.next_hop
            prev_ports = frozenset(port_counts)
            best_removed = False
            for addr in event.removed():
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                remaining = port_counts[route.next_hop] - 1
                if remaining:
                    port_counts[route.next_hop] = remaining
                else:
                    del port_counts[route.next_hop]
                if best is not None and route == best:
                    best_removed = True
            for addr in event.added():
                route = mapper.best_route_for_address(addr)
                if route is None:
                    continue
                port_counts[route.next_hop] = (
                    port_counts.get(route.next_hop, 0) + 1
                )
                if not best_removed and (
                    best is None or rank_key(route) < rank_key(best)
                ):
                    best = route
            if best_removed:
                best = recompute_best(event.new_addrs)
            if strategy is ForwardingStrategy.BEST_PORT:
                new_best_port = None if best is None else best.next_hop
                if new_best_port != prev_best_port:
                    changed_count += 1
            elif frozenset(port_counts) != prev_ports:
                changed_count += 1
        return changed_count

    def union_table_sizes(
        self, measurement: ContentMeasurement
    ) -> Dict[str, int]:
        """Accumulated union-strategy state per router (the §3.3.3 cost)."""
        sizes = {}
        for mapper in self._mappers:
            state = UnionFloodingState()
            for name in measurement.names():
                timeline = measurement.timeline(name)
                state.observe(mapper, name, timeline.set_at(0))
                for event in timeline.events():
                    state.observe(mapper, name, event.new_addrs)
            sizes[mapper.vantage.name] = state.table_size()
        return sizes


def per_day_update_rates(
    evaluator: DeviceUpdateCostEvaluator,
    events: Iterable[MobilityEvent],
) -> Dict[str, List[float]]:
    """§6.2.2 sensitivity to time: update rate per router per day.

    Vectorized by default — per-event update flags are computed once
    for the whole batch and reduced day by day; ``REPRO_SCALAR=1``
    replays the original group-then-evaluate loop. Both paths group by
    the same sorted distinct days and divide the same integers, so the
    series (and their ledger digests) are identical.
    """
    if scalar_mode():
        by_day: Dict[int, List[MobilityEvent]] = {}
        for event in events:
            by_day.setdefault(event.day, []).append(event)
        series: Dict[str, List[float]] = {}
        for day in sorted(by_day):
            report = evaluator.evaluate(by_day[day])
            for router, rate in report.rates.items():
                series.setdefault(router, []).append(rate)
        return series

    columns = evaluator._as_columns(events)
    if not len(columns):
        return {}
    with obs.span("evaluator.batch.per_day"):
        flags = evaluator._update_flags(columns)
        days, day_inverse = unique_with_inverse(columns.as_columns().day)
        counts = np.bincount(day_inverse, minlength=len(days))
        series = {}
        for pm, flag in zip(evaluator._port_maps, flags):
            day_updates = np.bincount(
                day_inverse[flag], minlength=len(days)
            )
            series[pm.vantage.name] = [
                int(n) / int(c) for n, c in zip(day_updates, counts)
            ]
    return series


@dataclass(frozen=True)
class MobilityTimeline:
    """One endpoint's attachment history over the probe horizon."""

    initial: Node
    #: Time-sorted ``(time, new_router)`` moves.
    moves: Tuple[Tuple[float, Node], ...] = ()

    def __post_init__(self):
        times = [t for t, _ in self.moves]
        if times != sorted(times):
            raise ValueError("moves must be time-sorted")

    def position_at(self, time: float) -> Node:
        """Where the endpoint is attached at ``time``."""
        position = self.initial
        for move_time, router in self.moves:
            if move_time <= time:
                position = router
            else:
                break
        return position

    def transitions(self) -> List[Tuple[float, Node, Node]]:
        """``(time, old_router, new_router)`` per move."""
        result = []
        position = self.initial
        for move_time, router in self.moves:
            result.append((move_time, position, router))
            position = router
        return result


class FaultToleranceEvaluator:
    """Probe the three architectures under one shared fault schedule.

    Every architecture faces the same topology, the same endpoint
    :class:`MobilityTimeline`, the same correspondent, and the same
    :class:`~repro.faults.FaultSchedule`; each is probed every
    ``probe_step`` over ``[0, horizon)`` and summarized as a
    :class:`~repro.faults.DegradationReport`. Latency units differ by
    architecture (hops for indirection/name-based, milliseconds for
    resolution) — availability, outages, and staleness are the
    comparable columns.

    With an empty schedule and lossless control plane, every
    architecture reports availability 1.0 and no stale deliveries
    once registrations settle — the no-fault identity the property
    tests pin down.
    """

    def __init__(
        self,
        graph: Graph,
        faults: Optional[FaultSchedule] = None,
        horizon: float = 120.0,
        probe_step: float = 0.5,
        seed: int = 2014,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if probe_step <= 0:
            raise ValueError("probe_step must be positive")
        self._graph = graph
        self._faults = faults or FaultSchedule.EMPTY
        self._horizon = horizon
        self._probe_step = probe_step
        self._seed = seed

    def _probe_times(self) -> List[float]:
        times = []
        t = 0.0
        while t < self._horizon:
            times.append(t)
            t += self._probe_step
        return times

    # -- indirection ---------------------------------------------------

    def evaluate_indirection(
        self,
        timeline: MobilityTimeline,
        correspondent: Node,
        primary_agent: Node,
        backup_agent: Optional[Node] = None,
        failover_delay: float = 0.0,
        registration_delay: float = 2.0,
    ) -> DegradationReport:
        """Home-agent indirection under home-agent failures.

        A probe is delivered when a live agent holds the endpoint's
        current binding; while the primary is down and failover has
        not completed, every probe fails — the sharp degradation the
        architecture is known for.
        """
        arch = IndirectionRouting(self._graph, home_agent=primary_agent)
        dist_corr = self._graph.bfs_distances(correspondent)

        # Registration pipeline: a move's new binding reaches the agent
        # system registration_delay after an agent is next reachable.
        registrations: List[Tuple[float, Node]] = []
        for move_time, _, new_router in timeline.transitions():
            reachable_at = self._next_agent_active(
                arch, move_time, backup_agent, failover_delay
            )
            registrations.append(
                (reachable_at + registration_delay, new_router)
            )

        trace = AvailabilityTrace(self._probe_step)
        for t in self._probe_times():
            agent = arch.active_agent_at(
                t, self._faults, backup_agent, failover_delay
            )
            if agent is None:
                trace.record(t, delivered=False)
                continue
            belief = timeline.initial
            for done_at, router in registrations:
                if done_at <= t:
                    belief = router
                else:
                    break
            actual = timeline.position_at(t)
            dist_agent = self._graph.bfs_distances(agent)
            latency = float(dist_corr[agent] + dist_agent[belief])
            delivered = belief == actual
            trace.record(
                t, delivered=delivered, stale=not delivered, latency=latency
            )
        return DegradationReport.from_trace("indirection", trace)

    def _next_agent_active(
        self,
        arch: IndirectionRouting,
        start: float,
        backup_agent: Optional[Node],
        failover_delay: float,
    ) -> float:
        """Earliest time >= ``start`` with a live agent (inf if never)."""
        t = start
        for _ in range(2 * len(self._faults.events) + 2):
            if arch.active_agent_at(
                t, self._faults, backup_agent, failover_delay
            ) is not None:
                return t
            candidates = []
            primary = self._faults.interval_containing(
                HOME_AGENT, arch.home_agent, t
            )
            if primary is not None:
                if backup_agent is not None:
                    candidates.append(primary[0] + failover_delay)
                candidates.append(primary[1])
            if backup_agent is not None:
                backup = self._faults.interval_containing(
                    HOME_AGENT, backup_agent, t
                )
                if backup is not None:
                    candidates.append(backup[1])
            upcoming = [c for c in candidates if c > t]
            if not upcoming:
                return math.inf
            t = min(upcoming)
        return t

    # -- name resolution -----------------------------------------------

    def evaluate_resolution(
        self,
        timeline: MobilityTimeline,
        replica_latency_ms: Dict[str, Dict[str, float]],
        retry: RetryPolicy,
        client_region: str = "us",
        ttl_s: float = 5.0,
        propagation_ms: float = 50.0,
        name: str = "endpoint",
    ) -> DegradationReport:
        """Resolution under replica outages, via a retrying client.

        The device updates the service at each move (the §2 O(1)
        update); the correspondent resolves through a TTL cache with
        retry/failover. Stale deliveries come from the TTL window and
        from degraded-mode answers while every replica is down.
        """
        service = NameResolutionService(
            replica_latency_ms,
            propagation_ms=propagation_ms,
            fault_schedule=self._faults,
        )
        resolver = RetryingResolver(
            service,
            client_region,
            retry,
            rng=random.Random(self._seed),
            ttl_s=ttl_s,
        )
        service.update(name, [timeline.initial], now=-1.0)
        pending = timeline.transitions()
        trace = AvailabilityTrace(self._probe_step)
        for t in self._probe_times():
            while pending and pending[0][0] <= t:
                move_time, _, new_router = pending.pop(0)
                service.update(name, [new_router], now=move_time)
            outcome = resolver.resolve(name, t)
            if not outcome.resolved:
                trace.record(
                    t, delivered=False, latency=outcome.total_latency_ms
                )
                continue
            actual = timeline.position_at(t)
            delivered = actual in outcome.result.locations
            trace.record(
                t,
                delivered=delivered,
                stale=(not delivered) or outcome.degraded,
                latency=outcome.total_latency_ms,
            )
        return DegradationReport.from_trace("name-resolution", trace)

    # -- name-based routing --------------------------------------------

    def evaluate_name_based(
        self,
        timeline: MobilityTimeline,
        correspondent: Node,
        loss: Optional[MessageLossModel] = None,
        retransmit: RetryPolicy = DEFAULT_RETRANSMIT,
        per_hop_delay: float = 1.0,
    ) -> DegradationReport:
        """Name-based routing under control-plane loss and faults.

        Each move triggers a lossy hop-by-hop update flood; probes fail
        while the correspondent's path still chases the old attachment
        (the per-source convergence outage) and while a router or link
        on the converged path is down.
        """
        loss = loss or MessageLossModel()
        simulator = ConvergenceSimulator(self._graph, per_hop_delay)
        dist_corr = self._graph.bfs_distances(correspondent)

        # Per-move convergence outage as seen from the correspondent,
        # sampled with a per-move rng fork so sweeps over the loss rate
        # reuse identical draws (common random numbers).
        outages: List[Tuple[float, float]] = []  # (move time, outage)
        for index, (move_time, old, new) in enumerate(
            timeline.transitions()
        ):
            event_rng = random.Random(f"{self._seed}:{index}")
            result = simulator.simulate_event_under_faults(
                old,
                new,
                event_rng,
                loss=loss,
                retransmit=retransmit,
                probe_step=min(self._probe_step, 0.25),
            )
            outages.append(
                (move_time, result.outage_by_source.get(correspondent, 0.0))
            )

        trace = AvailabilityTrace(self._probe_step)
        for t in self._probe_times():
            converging = False
            for move_time, outage in outages:
                if move_time <= t < move_time + outage:
                    converging = True
            actual = timeline.position_at(t)
            path_ok = self._data_path_up(correspondent, actual, t)
            delivered = (not converging) and path_ok
            trace.record(
                t,
                delivered=delivered,
                stale=converging,
                latency=float(dist_corr[actual]),
            )
        return DegradationReport.from_trace("name-based", trace)

    def _data_path_up(self, source: Node, target: Node, time: float) -> bool:
        from ..faults import LINK, ROUTER

        path = self._graph.shortest_path(source, target)
        if path is None:
            return False
        for node in path:
            if self._faults.is_down(ROUTER, node, time):
                return False
        for u, v in zip(path, path[1:]):
            if self._faults.is_down(LINK, (u, v), time):
                return False
        return True

    # -- all three, one schedule ---------------------------------------

    def evaluate_all(
        self,
        timeline: MobilityTimeline,
        correspondent: Node,
        primary_agent: Node,
        replica_latency_ms: Dict[str, Dict[str, float]],
        retry: RetryPolicy,
        backup_agent: Optional[Node] = None,
        failover_delay: float = 0.0,
        loss: Optional[MessageLossModel] = None,
        ttl_s: float = 5.0,
    ) -> Dict[str, DegradationReport]:
        """All three architectures under the one shared schedule."""
        return {
            "indirection": self.evaluate_indirection(
                timeline,
                correspondent,
                primary_agent,
                backup_agent,
                failover_delay,
            ),
            "name-resolution": self.evaluate_resolution(
                timeline, replica_latency_ms, retry, ttl_s=ttl_s
            ),
            "name-based": self.evaluate_name_based(
                timeline, correspondent, loss
            ),
        }


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (the §6.2.2 workload comparison)."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("correlation undefined for a constant series")
    return cov / math.sqrt(vx * vy)
