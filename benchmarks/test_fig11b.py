"""Bench: Fig. 11(b) — popular content update rates per router."""

from conftest import run_once

from repro.core import ContentUpdateCostEvaluator, ForwardingStrategy


def _evaluate_popular(world):
    evaluator = ContentUpdateCostEvaluator(world.routeviews, world.oracle)
    measurement = world.popular_measurement
    flooding = evaluator.evaluate(
        measurement, ForwardingStrategy.CONTROLLED_FLOODING
    )
    best = evaluator.evaluate(measurement, ForwardingStrategy.BEST_PORT)
    return flooding, best


def test_fig11b(benchmark, world):
    flooding, best = run_once(benchmark, _evaluate_popular, world)
    for router in flooding.rates:
        print(
            f"{router:14s} flooding {flooding.rates[router]*100:6.3f}%  "
            f"best-port {best.rates[router]*100:6.3f}%"
        )
    print(
        f"flooding max {flooding.max_rate()*100:.2f}% (paper: <=13%)  "
        f"best-port max {best.max_rate()*100:.2f}% (paper: <=6%)"
    )
    # Paper shapes: flooding up to ~13%, best-port at most ~6%, and the
    # most affected routers flood several times more than best-port.
    assert 0.03 <= flooding.max_rate() <= 0.20
    assert best.max_rate() <= 0.08
    assert flooding.max_rate() > best.max_rate()
    # Flooding >= best-port at (almost) every router; tiny counting
    # asymmetries aside, totals must dominate.
    for router in flooding.rates:
        assert flooding.rates[router] >= best.rates[router] - 0.01
    # Peripheral routers barely notice content mobility.
    assert flooding.rates["Mauritius"] <= 0.01
