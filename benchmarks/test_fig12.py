"""Bench: Fig. 12 — FIB aggregateability of popular content."""

from conftest import run_once

from repro.experiments import exp_fig12


def test_fig12(benchmark, world):
    result = run_once(benchmark, exp_fig12.run, world)
    print(exp_fig12.format_result(result))
    # Paper: between 2x and 16x across routers. Our single-feed
    # Mauritius/Georgia collapse slightly harder (their FIBs have fewer
    # distinct ports than any real RouteViews router), so the upper
    # band is wider.
    assert 2.0 <= result.min_popular() <= 8.0
    assert 10.0 <= result.max_popular() <= 30.0
    # Diversely-peered routers aggregate least; single-feed peripheral
    # routers most.
    assert result.popular["Oregon-1"] < result.popular["Mauritius"]
    assert result.popular["Oregon-1"] < result.popular["Georgia"]
    # Unpopular content aggregates hardly at all (§7.3: one entry per
    # principal for the long tail).
    for router, ratio in result.unpopular.items():
        assert ratio < 2.5, (router, ratio)
        assert ratio < result.popular[router]
