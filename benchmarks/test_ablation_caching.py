"""Bench: §8 on-path caching under mobility."""

from conftest import run_once

from repro.experiments import exp_ablation_caching
from repro.forwarding import InterestStrategy


def test_ablation_caching(benchmark):
    result = run_once(benchmark, exp_ablation_caching.run, n=40, trials=400)
    print(exp_ablation_caching.format_result(result))
    best = InterestStrategy.BEST_ONLY
    adaptive = InterestStrategy.ADAPTIVE
    fractions = result.cache_fractions
    # Caching helps best-only forwarding monotonically-ish...
    assert result.success[(best, fractions[-1])] > result.success[
        (best, fractions[0])
    ]
    # ...but even the densest cache leaves best-only short of the
    # strategy layer: caching alone does not ensure reachability.
    assert result.success[(best, fractions[-1])] < result.success[
        (adaptive, fractions[-1])
    ]
    assert result.success[(best, fractions[-1])] < 0.98
    # The adaptive strategy is near-perfect with or without caches.
    for fraction in fractions:
        assert result.success[(adaptive, fraction)] > 0.85
