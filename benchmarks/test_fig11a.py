"""Bench: Fig. 11(a) — popular content mobility events per day."""

from conftest import run_once

from repro.experiments import exp_fig11


def _measure_panel_a(world):
    popular = world.popular_measurement
    return list(popular.daily_event_counts().values())


def test_fig11a(benchmark, world):
    events_per_day = run_once(benchmark, _measure_panel_a, world)
    from repro.mobility import percentile

    median = percentile(events_per_day, 0.5)
    peak = max(events_per_day)
    print(
        f"Fig 11(a): names={len(events_per_day)} "
        f"median={median:.2f} (paper: 2) max={peak:.1f} (paper: 24)"
    )
    assert 1.0 <= median <= 4.0
    # The hourly measurement caps events at 24/day; the tail reaches it.
    assert 12.0 <= peak <= 24.0
    # A long tail of near-static names exists too.
    static = sum(1 for v in events_per_day if v < 0.5) / len(events_per_day)
    assert static >= 0.15
