"""Bench: §3.2 route-selection-policy sensitivity."""

from conftest import run_once

from repro.experiments import exp_policy_sensitivity


def test_policy_sensitivity(benchmark, world):
    result = run_once(benchmark, exp_policy_sensitivity.run, world)
    print(exp_policy_sensitivity.format_result(result))
    bgp = result.rates["bgp"]
    shortest = result.rates["shortest-only"]
    sticky = result.rates["sticky-random"]
    # Policies genuinely change the cost: the arbitrary-but-stable
    # policy is far worse than either structured one in aggregate.
    assert sum(sticky.values()) > sum(bgp.values()) * 1.5
    # Shortest-only is no worse than BGP in aggregate here (relationship
    # preferences add diversity on top of pure length).
    assert sum(shortest.values()) <= sum(bgp.values()) * 1.2
    # The qualitative router ordering survives the structured policies.
    for rates in (bgp, shortest):
        oregon_max = max(rates[f"Oregon-{i}"] for i in range(1, 5))
        assert oregon_max == max(rates.values())
        assert rates["Mauritius"] <= 0.005
