"""Bench: §3.1 intradomain displacement vs. delegation density."""

from conftest import run_once

from repro.experiments import exp_intradomain


def test_intradomain(benchmark):
    result = run_once(
        benchmark, exp_intradomain.run, num_routers=24, events=400
    )
    print(exp_intradomain.format_result(result))
    by_level = {p.specifics_per_router: p for p in result.points}
    # No delegation: within-block moves never cross a longest-matching
    # boundary, so no router is ever displaced.
    assert by_level[0].mean_displaced_fraction == 0.0
    assert by_level[0].max_displaced_fraction == 0.0
    # Heavy delegation displaces a clearly nonzero share on average and
    # most of the network on the worst events.
    assert by_level[8].mean_displaced_fraction > 0.01
    assert by_level[8].max_displaced_fraction > 0.3
    # Monotone-ish growth from none to heavy delegation.
    assert (
        by_level[8].mean_displaced_fraction
        > by_level[1].mean_displaced_fraction
    )
