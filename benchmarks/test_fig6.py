"""Bench: Fig. 6 — distinct network locations per user per day."""

from conftest import run_once

from repro.experiments import exp_fig6


def test_fig6(benchmark, world, scale):
    result = run_once(benchmark, exp_fig6.run, world)
    print(exp_fig6.format_result(result))
    # Shape checks (tight at paper scale, loose at small scale).
    loose = scale.label == "small"
    assert 2.0 <= result.median_ips() <= (6.0 if loose else 4.5)
    assert 1.2 <= result.median_prefixes() <= 3.5
    assert 1.2 <= result.median_ases() <= 3.0
    assert result.fraction_above_10_ips() > (0.10 if loose else 0.15)
    # Ordering: IPs >= prefixes >= ASes for every user.
    for i_val, p_val, a_val in zip(result.ips, result.prefixes, result.ases):
        assert i_val >= p_val - 1e-9 >= a_val - 2e-9
