"""Bench: Fig. 7 — transitions across network locations per day."""

from conftest import run_once

from repro.experiments import exp_fig7


def test_fig7(benchmark, world, scale):
    result = run_once(benchmark, exp_fig7.run, world)
    print(exp_fig7.format_result(result))
    loose = scale.label == "small"
    assert 2.0 <= result.median_ip_transitions() <= (7.0 if loose else 5.0)
    assert 0.5 <= result.median_as_transitions() <= (3.5 if loose else 2.5)
    lo, hi = result.as_transition_range()
    assert hi >= (10.0 if loose else 15.0)  # the heavy flapper tail
    assert lo <= 0.5  # near-sedentary users exist
    # IP transitions dominate AS transitions for every user.
    for ip_t, as_t in zip(result.ip_transitions, result.as_transitions):
        assert ip_t >= as_t - 1e-9
