"""Bench: §8 robustness — mobility perturbed by large factors."""

from conftest import run_once

from repro.experiments import exp_perturbation


def test_perturbation(benchmark, world):
    result = run_once(benchmark, exp_perturbation.run, world)
    print(exp_perturbation.format_result(result))
    # Event volume really is perturbed by large factors...
    assert result.events[4.0] > result.events[0.5] * 2
    # ...but the per-router profile barely moves (the paper's claim).
    for scale in result.scales:
        assert result.profile_correlation[scale] > 0.95, scale
    # The qualitative orderings hold at every scale.
    for scale in result.scales:
        rates = result.rates[scale]
        oregon_max = max(rates[f"Oregon-{i}"] for i in range(1, 5))
        assert oregon_max == max(rates.values())
        assert rates["Mauritius"] <= 0.005
        assert rates["Georgia"] < oregon_max
