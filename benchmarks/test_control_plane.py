"""Bench: the array-native control plane vs its scalar ancestors.

Two measurements the refactor exists for:

* **cold oracle build** — one frontier-batched sweep over every
  destination (``routes_to_many``) against the per-destination dict
  BFS (``_compute``) it replaced, with a full parity check;
* **shared-memory fan-out** — ``run_experiments`` with ``--jobs``-style
  pooling, asserting through the metrics stream that workers attach
  the parent's exported World instead of rebuilding or unpickling
  their own (``shm.worker.attached`` up, the event-columns pickle
  path never taken) and that every segment is unlinked at shutdown.

Speedups are recorded as ``bench.control_plane.*`` gauges; the hard
parity/attach assertions hold at any scale, the speedup floors only at
paper scale where the constant factors are amortized.
"""

import time

from conftest import run_once

from repro import obs
from repro.engine import run_experiments
from repro.routing import RoutingOracle

from test_columnar import _scalar


def test_oracle_cold_build(benchmark, world, scale):
    topo = world.topology
    dests = sorted(topo.ases)

    def cold_batch():
        oracle = RoutingOracle(topo)
        return oracle.routes_to_many(dests)

    start = time.perf_counter()
    batch = run_once(benchmark, cold_batch)
    vector_s = time.perf_counter() - start

    def cold_scalar():
        oracle = RoutingOracle(topo)
        return {dest: oracle._compute(dest) for dest in dests}

    tables, scalar_s = _scalar(cold_scalar)

    for dest in dests[:: max(1, len(dests) // 25)]:  # spot-check parity
        materialized = batch.materialize(dest)
        reference = tables[dest]
        assert set(materialized) == set(reference)
        for asn, bp in materialized.items():
            assert bp.path == reference[asn].path

    speedup = scalar_s / max(vector_s, 1e-9)
    obs.gauge("bench.control_plane.oracle.vector_s", vector_s)
    obs.gauge("bench.control_plane.oracle.scalar_s", scalar_s)
    obs.gauge("bench.control_plane.oracle.speedup", speedup)
    print(
        f"cold oracle build [{scale.label}]: {len(dests)} dests, "
        f"frontier {vector_s:.3f}s vs scalar {scalar_s:.3f}s "
        f"({speedup:.1f}x)"
    )
    if scale.label == "paper":
        assert speedup >= 3.0, (
            f"frontier oracle build only {speedup:.1f}x faster than "
            f"per-destination BFS at paper scale"
        )


_FANOUT_EXPERIMENTS = ["fig8", "fig10", "fig12"]


def _pooled(scale, jobs):
    """(records, merged metrics snapshot, seconds) for a pooled run."""
    metrics = obs.Metrics()
    start = time.perf_counter()
    with obs.using(metrics):
        records = run_experiments(
            _FANOUT_EXPERIMENTS, scale, jobs=jobs, cache=None
        )
    return records, metrics.snapshot(), time.perf_counter() - start


def test_pooled_workers_attach_shared_world(benchmark, scale):
    records, snap, pooled_s = run_once(benchmark, _pooled, scale, 2)
    assert all(record.ok for record in records), [
        (record.name, record.status) for record in records
    ]
    counters = snap["counters"]
    # Every worker-side experiment saw an attached segment...
    assert counters.get("shm.worker.attached", 0) >= len(records)
    # ...no worker fell back to unpickling the event table...
    assert counters.get("world.event_columns.pickle_path", 0) == 0
    # ...and the parent unlinked everything it created.
    assert counters.get("shm.segments.created", 0) >= 1
    assert counters.get("shm.leaked", 0) == 0
    assert snap["gauges"].get("shm.segments.open", 0) == 0

    (_, scalar_snap, _), scalar_s = _scalar(_pooled, scale, 2)
    assert scalar_snap["counters"].get("shm.worker.attached", 0) == 0

    speedup = scalar_s / max(pooled_s, 1e-9)
    obs.gauge("bench.control_plane.fanout.array_s", pooled_s)
    obs.gauge("bench.control_plane.fanout.scalar_s", scalar_s)
    obs.gauge("bench.control_plane.fanout.speedup", speedup)
    print(
        f"pooled fan-out [{scale.label}]: {len(records)} experiments, "
        f"shared-world {pooled_s:.3f}s vs scalar pool {scalar_s:.3f}s "
        f"({speedup:.1f}x), "
        f"{counters.get('shm.worker.attached', 0):.0f} worker attaches"
    )
