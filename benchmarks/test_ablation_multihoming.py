"""Bench: §3.3 multihomed device mobility."""

from conftest import run_once

from repro.experiments import exp_ablation_multihoming


def test_ablation_multihoming(benchmark, world):
    result = run_once(benchmark, exp_ablation_multihoming.run, world)
    print(exp_ablation_multihoming.format_result(result))

    def total(rates):
        return sum(rates.values())

    # The cellular anchor stabilises the best port: aggregate
    # multihomed best-port cost sits clearly below single attachment.
    assert total(result.multi_best_port) < total(result.single) * 0.9
    # Flooding tracks the whole set, so it pays at least best-port.
    for router in result.single:
        assert (
            result.multi_flooding[router]
            >= result.multi_best_port[router] - 0.01
        )
    # Peripheral routers stay silent in every mode.
    assert result.multi_flooding["Mauritius"] <= 0.005
    assert result.multi_best_port["Tokyo"] <= 0.04
