"""Bench: does the Fig. 8 shape survive a larger synthetic Internet?

§8's unrepresentativeness critique applies to our substitute topology
too: the default world has ~420 ASes. This ablation doubles the tier-2
and stub populations, rebuilds the routers and workload on the larger
Internet, and checks that the qualitative Fig. 8 structure — Oregon
highest, periphery silent, Georgia well below the collectors — is a
property of the *methodology*, not of one topology size.
"""

from conftest import run_once

from repro.core import DeviceUpdateCostEvaluator
from repro.measurement import build_routeviews_routers
from repro.mobility import MobilityWorkloadConfig, generate_workload
from repro.routing import RoutingOracle
from repro.topology import ASTopologyConfig, generate_as_topology


def _evaluate_at_scale(t2_per_region, stubs_per_region, users, days):
    topology = generate_as_topology(
        ASTopologyConfig(
            t2_per_region=t2_per_region, stubs_per_region=stubs_per_region
        )
    )
    workload = generate_workload(
        topology,
        MobilityWorkloadConfig(num_users=users, num_days=days),
    )
    oracle = RoutingOracle(topology)
    routers = build_routeviews_routers(topology)
    report = DeviceUpdateCostEvaluator(routers, oracle).evaluate(
        workload.all_transitions()
    )
    return len(topology), report


def test_topology_scale(benchmark, scale):
    users = 150 if scale.label == "small" else 372
    days = 4 if scale.label == "small" else 7

    def both():
        base = _evaluate_at_scale(5, 30, users, days)
        double = _evaluate_at_scale(10, 60, users, days)
        return base, double

    (base_size, base), (double_size, double) = run_once(benchmark, both)
    print(f"base Internet: {base_size} ASes; doubled: {double_size} ASes")
    for label, report in (("base", base), ("doubled", double)):
        print(
            f"{label:8s} max {report.max_rate()*100:6.2f}%  "
            f"median {report.median_rate()*100:6.2f}%  "
            f"Mauritius {report.rate_of('Mauritius')*100:.2f}%"
        )
    assert double_size > base_size * 1.7
    for report in (base, double):
        oregon_max = max(report.rate_of(f"Oregon-{i}") for i in range(1, 5))
        assert oregon_max == report.max_rate()
        assert report.rate_of("Mauritius") <= 0.005
        assert report.rate_of("Georgia") < oregon_max
    # The magnitudes stay in the same regime across topology sizes.
    assert 0.3 <= double.max_rate() / base.max_rate() <= 3.0
