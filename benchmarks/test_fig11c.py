"""Bench: Fig. 11(c) — unpopular content update rates per router."""

from conftest import run_once

from repro.core import ContentUpdateCostEvaluator, ForwardingStrategy


def _evaluate_unpopular(world):
    evaluator = ContentUpdateCostEvaluator(world.routeviews, world.oracle)
    measurement = world.unpopular_measurement
    flooding = evaluator.evaluate(
        measurement, ForwardingStrategy.CONTROLLED_FLOODING
    )
    best = evaluator.evaluate(measurement, ForwardingStrategy.BEST_PORT)
    return flooding, best


def test_fig11c(benchmark, world, scale):
    flooding, best = run_once(benchmark, _evaluate_unpopular, world)
    for router in flooding.rates:
        print(
            f"{router:14s} flooding {flooding.rates[router]*100:6.3f}%  "
            f"best-port {best.rates[router]*100:6.3f}%"
        )
    print(
        f"flooding max {flooding.max_rate()*100:.2f}% (paper: <=1%)  "
        f"best-port median {best.median_rate()*100:.3f}% (paper: 0.08%)"
    )
    # The long tail is dramatically cheaper than popular content; at
    # small scale the tiny event count makes rates lumpy, so bound the
    # update *counts* there instead.
    if scale.label == "small":
        assert flooding.num_events < 200
        assert max(flooding.updates.values()) <= 5
    else:
        assert flooding.max_rate() <= 0.05
        assert best.median_rate() <= 0.01
    # Best-port is near-silent for the long tail everywhere.
    assert best.max_rate() <= 0.06
    for router in flooding.rates:
        assert flooding.rates[router] >= best.rates[router] - 0.01
