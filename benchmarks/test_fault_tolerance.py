"""Bench: graceful degradation under the shared fault schedule (§8 gap).

Pins the three headline shapes the fault-injection subsystem exists to
produce, all under one shared schedule and one seed:

* resolution availability is monotone nondecreasing in replica count
  (strictly better somewhere along the sweep);
* indirection availability collapses on home-agent failure and is
  restored — bounded by the failover delay — when a backup exists;
* name-based outage grows with the control-plane message-loss rate
  (common random numbers make the sweep monotone, not just a trend).
"""

from conftest import run_once

from repro.experiments import exp_fault_tolerance


def test_fault_tolerance(benchmark):
    result = run_once(benchmark, exp_fault_tolerance.run)
    print(exp_fault_tolerance.format_result(result))

    # Resolution: each added replica can only shrink the all-down
    # windows, so availability never drops — and the sweep actually
    # exercises that (strict improvement overall).
    sweep = result.replica_sweep
    assert [count for count, _ in sweep] == sorted(c for c, _ in sweep)
    availabilities = [r.availability for _, r in sweep]
    assert all(b >= a for a, b in zip(availabilities, availabilities[1:]))
    assert availabilities[-1] > availabilities[0]
    # Deeper deployments also fail over to nearer live replicas, so
    # worst-case outage shrinks and the thin deployment leans hardest
    # on degraded-mode cache serves.
    assert sweep[-1][1].max_outage() < sweep[0][1].max_outage()
    assert sweep[0][1].stale_fraction > sweep[-1][1].stale_fraction

    # Indirection: the home-agent crash takes the endpoint out for the
    # whole outage without a backup, for only ~failover_delay with one.
    with_backup = result.indirection_failover
    without = result.indirection_no_backup
    assert with_backup.availability > without.availability
    assert without.max_outage() >= result.home_agent_outage[1]
    assert with_backup.max_outage() <= result.failover_delay + 1.0
    assert with_backup.availability < 1.0  # failover is not free

    # Name-based: outage duration grows with message-loss rate under
    # common random numbers — monotone per-rate, not just on average.
    loss_sweep = result.loss_sweep
    assert [rate for rate, _ in loss_sweep] == sorted(
        r for r, _ in loss_sweep
    )
    max_outages = [r.max_outage() for _, r in loss_sweep]
    totals = [sum(r.outage_durations) for _, r in loss_sweep]
    avails = [r.availability for _, r in loss_sweep]
    assert all(b >= a for a, b in zip(max_outages, max_outages[1:]))
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    assert all(b <= a for a, b in zip(avails, avails[1:]))
    assert max_outages[-1] > max_outages[0]

    # The shared-schedule table compares all three architectures.
    assert set(result.shared) == {
        "indirection", "name-resolution", "name-based"
    }
    for report in result.shared.values():
        assert 0.0 <= report.availability <= 1.0
