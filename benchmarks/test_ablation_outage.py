"""Bench: mobility outage across architectures (§2/§8)."""

from conftest import run_once

from repro.experiments import exp_ablation_outage


def test_ablation_outage(benchmark, world):
    result = run_once(benchmark, exp_ablation_outage.run, world)
    print(exp_ablation_outage.format_result(result))
    # Name-based outage scales with topology diameter: chain worst,
    # clique (diameter 1) best.
    chain_mean, chain_max = result.name_based["chain"]
    clique_mean, clique_max = result.name_based["clique"]
    tree_mean, tree_max = result.name_based["binary-tree"]
    assert chain_mean > tree_mean > clique_mean
    assert chain_max > result.indirection_outage_hops
    assert clique_max <= 1.5
    # Resolution: failures grow and lookup latency shrinks with TTL.
    points = sorted(result.ttl_points, key=lambda p: p.ttl_s)
    assert points[0].failure_rate == 0.0  # TTL 0 is always fresh
    assert points[-1].failure_rate > points[0].failure_rate
    assert points[-1].mean_lookup_ms < points[0].mean_lookup_ms
    assert points[-1].cache_hit_rate > 0.3
