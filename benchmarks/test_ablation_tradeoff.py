"""Bench: the full §3.3.3 cost triangle for all forwarding strategies."""

from conftest import run_once

from repro.core import ForwardingStrategy
from repro.experiments import exp_ablation_tradeoff


def test_ablation_tradeoff(benchmark, world):
    result = run_once(benchmark, exp_ablation_tradeoff.run, world)
    print(exp_ablation_tradeoff.format_result(result))

    def mean(strategy, attr):
        costs = result.for_strategy(strategy)
        return sum(getattr(c, attr) for c in costs) / len(costs)

    bp, fl, un = (
        ForwardingStrategy.BEST_PORT,
        ForwardingStrategy.CONTROLLED_FLOODING,
        ForwardingStrategy.UNION_FLOODING,
    )
    # Traffic: best-port sends exactly one copy; flooding more; union
    # at least as many as flooding (it floods a superset of ports).
    assert mean(bp, "avg_copies_per_packet") == 1.0
    assert mean(fl, "avg_copies_per_packet") > 1.0
    assert mean(un, "avg_copies_per_packet") >= mean(fl, "avg_copies_per_packet")
    # State: union accumulates the most entries.
    assert mean(un, "table_entries") >= mean(fl, "table_entries")
    # Updates: union pays the least, flooding the most.
    assert mean(un, "update_rate") < mean(fl, "update_rate")
    assert mean(bp, "update_rate") <= mean(fl, "update_rate") + 1e-9
