"""Bench: resource-sampler overhead and peak-RSS plausibility.

Pins the two properties the telemetry layer must keep:

* sampling is near-free — at the default 10 Hz the background sampler
  must cost well under 3% of a fig8-class experiment's wall time, so
  leaving telemetry on for every run (which the engine does) never
  distorts the measurements it reports;
* ``peak_rss_mb`` measures something real — a strictly larger workload
  built in a fresh interpreter must report at least the peak RSS of a
  smaller one, so budget bands track memory, not noise.

The overhead measurement amplifies the tick rate (``AMP_HZ``) and
scales the observed delta back down to the default rate: at 10 Hz the
true overhead is too small to separate from scheduler noise directly,
but 40x amplification makes it measurable while min-of-N keeps the
baseline honest.
"""

import os
import subprocess
import sys
import time

from repro import obs
from repro.engine import get_spec, load_registry
from repro.obs import resources as res

#: Amplified tick rate for the overhead measurement.
AMP_HZ = 400.0

#: Timed repetitions per configuration (min-of-N defeats warm-up noise).
ROUNDS = 3

#: The budget under test: sampler overhead at the default rate.
MAX_OVERHEAD_FRACTION = 0.03


def _min_wall(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_tick_cost_fits_the_overhead_budget():
    # Direct per-tick cost: at DEFAULT_RESOURCE_HZ ticks/s the sampler
    # may consume at most MAX_OVERHEAD_FRACTION of every wall second.
    sampler = res.ResourceSampler(hz=10, registry=obs.Metrics())
    sampler.tick()  # warm the /proc read path
    ticks = 500
    start = time.perf_counter()
    for _ in range(ticks):
        sampler.tick()
    per_tick_s = (time.perf_counter() - start) / ticks
    budget_s = MAX_OVERHEAD_FRACTION / res.DEFAULT_RESOURCE_HZ
    print(f"tick cost: {per_tick_s * 1e6:.1f}us "
          f"(budget {budget_s * 1e6:.0f}us)")
    assert per_tick_s < budget_s


def test_sampler_overhead_under_3pct_on_fig8(world):
    load_registry()
    spec = get_spec("fig8")

    def run_fig8():
        with obs.using(obs.Metrics()):
            spec.execute(world)

    plain_s = _min_wall(run_fig8)

    def run_sampled():
        registry = obs.Metrics()
        sampler = res.ResourceSampler(hz=AMP_HZ, registry=registry)
        sampler.start()
        try:
            with obs.using(registry):
                spec.execute(world)
        finally:
            sampler.stop()

    sampled_s = _min_wall(run_sampled)
    amplified_overhead = max(0.0, sampled_s - plain_s)
    scaled = amplified_overhead * (res.DEFAULT_RESOURCE_HZ / AMP_HZ)
    fraction = scaled / plain_s if plain_s else 0.0
    print(f"fig8 wall {plain_s:.3f}s plain, {sampled_s:.3f}s at "
          f"{AMP_HZ:g}Hz -> {fraction * 100:.3f}% at default rate")
    # 5 ms absolute slack keeps sub-second walls from flaking on
    # scheduler noise the amplification cannot average away.
    assert scaled < MAX_OVERHEAD_FRACTION * plain_s + 0.005


_PEAK_SCRIPT = """
import dataclasses, json, sys
from repro.experiments import SMALL_SCALE, World
from repro.obs.resources import sample_resources

scale = dataclasses.replace(
    SMALL_SCALE, num_users=int(sys.argv[1]),
    device_days=int(sys.argv[2]),
)
world = World(scale)
world.workload  # force the mobility tables into memory
world.device_event_columns  # ...and the columnar event arrays
print(json.dumps({"peak_rss_mb": sample_resources().peak_rss_mb}))
"""


def _peak_rss_at(num_users: int, device_days: int) -> float:
    import json

    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = "off"  # build, don't mmap a cached blob
    proc = subprocess.run(
        [sys.executable, "-c", _PEAK_SCRIPT,
         str(num_users), str(device_days)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])["peak_rss_mb"]


def test_peak_rss_is_monotone_in_scale():
    # Fresh interpreters (peak RSS is a process-lifetime high-water
    # mark) building a 1x and a ~6x workload: the bigger build must
    # never report a *lower* peak, or the budget bands bound nothing.
    small = _peak_rss_at(60, 3)
    large = _peak_rss_at(600, 14)
    print(f"peak RSS: {small:.1f} MB (60 users x 3 days) -> "
          f"{large:.1f} MB (600 users x 14 days)")
    assert small > 0
    assert large >= small
