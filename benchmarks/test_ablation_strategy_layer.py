"""Bench: the strategy layer under content mobility (§1/§8)."""

from conftest import run_once

from repro.experiments import exp_ablation_strategy_layer
from repro.forwarding import InterestStrategy


def test_ablation_strategy_layer(benchmark):
    result = run_once(
        benchmark, exp_ablation_strategy_layer.run, n=40, trials=400
    )
    print(exp_ablation_strategy_layer.format_result(result))
    best = InterestStrategy.BEST_ONLY
    flood = InterestStrategy.FLOOD
    adaptive = InterestStrategy.ADAPTIVE
    stale = result.radii[0]  # the most stale setting
    # With stale FIBs, best-only blackholes most retrievals...
    assert result.success(best, stale) < 0.4
    # ...while flooding and the adaptive strategy recover several
    # times more of them (and agree with each other).
    assert result.success(flood, stale) > 0.5
    assert result.success(adaptive, stale) > 0.5
    assert result.success(adaptive, stale) > result.success(best, stale) * 3
    assert abs(
        result.success(adaptive, stale) - result.success(flood, stale)
    ) < 0.15
    # The adaptive strategy pays less traffic than flooding everywhere;
    # once any routing update has spread (radius >= 1) the gap is wide
    # (fully-stale retrievals degenerate to a graph search either way).
    for radius in result.radii:
        ceiling = 0.85 if radius == 0 else 0.5
        assert result.traffic(adaptive, radius) < (
            result.traffic(flood, radius) * ceiling
        ), radius
    # Once updates reach far enough, everyone succeeds.
    converged = result.radii[-1]
    for strategy in InterestStrategy:
        assert result.success(strategy, converged) > 0.95
    # Success is monotone in the update reach for best-only.
    succ = [result.success(best, r) for r in result.radii]
    assert succ == sorted(succ)
