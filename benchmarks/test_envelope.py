"""Bench: §6.2/§7.3 back-of-the-envelope calculations, fed with both the
paper's constants and this reproduction's measured probabilities."""

from conftest import run_once

from repro.core import DeviceUpdateCostEvaluator
from repro.experiments import exp_envelope, exp_fig8


def _run_with_measured(world):
    fig8 = exp_fig8.run(world)
    measured_device = fig8.report.median_rate()
    return exp_envelope.run(
        measured_device_probability=measured_device,
        measured_content_probability=0.005,
    )


def test_envelope(benchmark, world):
    result = run_once(benchmark, _run_with_measured, world)
    print(exp_envelope.format_result(result))
    by_label = {s.label: s for s in result.scenarios}
    # The paper's arithmetic reproduces exactly.
    assert abs(by_label["devices (median user)"].updates_per_second() - 2083) < 5
    assert abs(by_label["devices (mean user)"].updates_per_second() - 4861) < 5
    assert abs(by_label["content names"].updates_per_second() - 115.7) < 1
    # The headline asymmetry: device mobility is prohibitively more
    # expensive for routers than content mobility.
    device = by_label["devices (median user)"].updates_per_second()
    content = by_label["content names"].updates_per_second()
    assert device > 10 * content
    # Extra FIB entries stay in the ~1% regime.
    assert 0.001 <= result.extra_fib <= 0.05
