"""Bench: Table 1 — analytic stretch vs update cost + validation."""

from conftest import run_once

from repro.experiments import exp_table1


def test_table1(benchmark):
    result = run_once(benchmark, exp_table1.run, n=63, steps=4000)
    print(exp_table1.format_result(result))
    # Shape checks: the tradeoff of Table 1.
    for kind in ("chain", "clique", "binary-tree", "star"):
        exact = result.exact[kind]
        sim = result.simulated[kind]
        assert exact.indirection_update_cost < exact.name_based_update_cost \
            or kind == "star"  # star: hub-only updates are even cheaper
        assert sim.name_based_stretch == 0.0
        assert abs(sim.name_based_update_cost - exact.name_based_update_cost) \
            <= max(0.15 * exact.name_based_update_cost, 0.01)
        assert abs(sim.indirection_stretch - exact.indirection_stretch) \
            <= 0.15 * exact.indirection_stretch
    # Chain: update cost ~1/3; clique ~1; star ~1/(n+1).
    assert abs(result.exact["chain"].name_based_update_cost - 1 / 3) < 0.05
    assert result.exact["clique"].name_based_update_cost > 0.9
    assert result.exact["star"].name_based_update_cost < 0.05
