"""Bench: §6.2.2 sensitivity — time, router set, and workload."""

from conftest import run_once

from repro.experiments import exp_fig8_sensitivity


def test_fig8_sensitivity(benchmark, world, scale):
    alt_users = 300 if scale.label == "small" else 900
    result = run_once(
        benchmark, exp_fig8_sensitivity.run, world, alt_users=alt_users
    )
    print(exp_fig8_sensitivity.format_result(result))
    # (1) day-to-day stability: paper reports std < 0.005 at every
    # router; our synthetic days are noisier but still tight.
    for router, std in result.per_day_std.items():
        assert std < 0.05, (router, std)
    # (2) the RIPE set tells the same story as RouteViews.
    rv, ripe = result.routeviews, result.ripe
    assert 0.3 <= ripe.max_rate() / rv.max_rate() <= 2.5
    assert 0.3 <= (ripe.median_rate() + 1e-6) / (rv.median_rate() + 1e-6) <= 2.5
    # (3) a different, larger workload produces highly correlated
    # per-router rates (paper: 0.88).
    assert result.cross_workload_correlation > 0.8
