"""Bench: the run engine — warm-cache speedup and parallel identity.

Pins the two acceptance properties of the engine subsystem:

* a warm :class:`~repro.engine.cache.ArtifactCache` makes substrate
  construction measurably faster than a cold build;
* ``run_experiments`` returns identical payloads at ``jobs=4`` and
  ``jobs=1`` (determinism across process boundaries).
"""

import shutil
import tempfile
from time import perf_counter

from conftest import run_once

from repro.engine import ArtifactCache, run_experiments
from repro.experiments import World, active_scale

#: Standalone experiments used for the parallel-identity bench.
NAMES = ["table1", "compact-routing", "envelope", "ablation-hybrid",
         "intradomain"]


def _touch_substrate(world):
    world.topology
    world.workload
    world.alternate_workload
    world.popular_measurement
    world.unpopular_measurement
    return world


def test_warm_cache_beats_cold(benchmark):
    scale = active_scale()
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        started = perf_counter()
        cold = _touch_substrate(World(scale, cache=ArtifactCache(root)))
        cold_s = perf_counter() - started
        assert cold.cache.misses > 0 and cold.cache.hits == 0

        warm = run_once(
            benchmark,
            lambda: _touch_substrate(World(scale, cache=ArtifactCache(root))),
        )
        warm_s = benchmark.stats.stats.mean
        assert warm.cache.hits > 0 and warm.cache.misses == 0
        print(f"substrate build: cold {cold_s:.2f}s, warm {warm_s:.2f}s")
        assert warm_s < cold_s
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_parallel_identical_to_serial(benchmark):
    scale = active_scale()
    serial = run_experiments(NAMES, scale, jobs=1)
    parallel = run_once(benchmark, run_experiments, NAMES, scale, jobs=4)
    assert all(r.ok for r in serial), [r.error for r in serial]
    strip = lambda r: {**r.to_dict(), "wall_time_s": None, "metrics": None}
    assert [strip(r) for r in serial] == [strip(r) for r in parallel]
