"""Bench: the §3.3.3 union-of-past-addresses strategy ablation."""

from conftest import run_once

from repro.experiments import exp_ablation_union


def test_ablation_union(benchmark, world):
    result = run_once(benchmark, exp_ablation_union.run, world)
    print(exp_ablation_union.format_result(result))
    # Union flooding pays updates only for genuinely new locations:
    # strictly no more than controlled flooding, per router.
    for router in result.flooding.rates:
        assert result.union.rates[router] <= result.flooding.rates[router] + 1e-9
    # And in aggregate it is much cheaper.
    total_flooding = sum(result.flooding.updates.values())
    total_union = sum(result.union.updates.values())
    assert total_union < total_flooding * 0.6
    # The price: forwarding state above one port per name at the
    # well-connected routers.
    assert max(result.union_table_sizes.values()) > result.names_measured
