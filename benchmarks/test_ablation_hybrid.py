"""Bench: the §8 hybrid (addressing-assisted name-based) architecture."""

from conftest import run_once

from repro.experiments import exp_ablation_hybrid


def test_ablation_hybrid(benchmark):
    result = run_once(
        benchmark, exp_ablation_hybrid.run, n=40, steps=3000
    )
    print(exp_ablation_hybrid.format_result(result))
    shares = sorted(result.evaluations)
    prev_hybrid_update = None
    for share in shares:
        ev = result.evaluations[share]
        nb = ev.by_name("name-based")
        ind = ev.by_name("indirection")
        hyb = ev.by_name("hybrid")
        # The hybrid never updates more routers than pure name-based.
        assert hyb.update_fraction <= nb.update_fraction + 1e-9
        # Content traffic keeps zero stretch under the hybrid.
        assert hyb.content_stretch == 0.0
        # Device traffic detours like pure indirection.
        assert abs(hyb.device_stretch - ind.device_stretch) < 1e-9
        # Router update cost falls as the device share grows.
        if prev_hybrid_update is not None:
            assert hyb.update_fraction <= prev_hybrid_update + 1e-9
        prev_hybrid_update = hyb.update_fraction
    # At the realistic (device-heavy) end, the hybrid removes the bulk
    # of pure name-based routing's update load.
    heavy = result.evaluations[shares[-1]]
    assert heavy.by_name("hybrid").update_fraction < (
        heavy.by_name("name-based").update_fraction * 0.25
    )
