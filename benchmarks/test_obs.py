"""Bench: observability overhead and end-to-end metrics threading.

Pins the two properties the instrumentation layer must keep:

* recording is cheap — spans and counters on the hot paths must cost
  microseconds, not milliseconds, so instrumenting the World substrate
  and the routing oracle never shows up in an experiment's wall time;
* the engine threads metrics end to end — a run's records carry the
  per-experiment span tree and counters that ``--profile`` and
  ``--metrics-out`` report.
"""

from conftest import run_once

from repro import obs
from repro.engine import run_experiments
from repro.experiments import active_scale

#: Span/counter pairs recorded per timed round.
OPS = 10_000


def _record_many():
    collector = obs.Metrics()
    with obs.using(collector):
        for _ in range(OPS):
            with obs.span("bench.outer"):
                with obs.span("bench.inner"):
                    obs.incr("bench.count")
    return collector


def test_recording_overhead(benchmark):
    collector = benchmark(_record_many)
    assert collector.counters["bench.count"] == OPS
    assert collector.timers["bench.inner"]["count"] == OPS
    per_op_s = benchmark.stats.stats.mean / OPS
    print(f"obs overhead: {per_op_s * 1e6:.2f}us per span-pair+counter")
    # Generous ceiling: recording must stay far below experiment work.
    assert per_op_s < 500e-6


def test_runner_threads_metrics_end_to_end(benchmark):
    record, = run_once(
        benchmark, run_experiments, ["compact-routing"], active_scale()
    )
    assert record.ok, record.error
    timers = record.metrics["timers"]
    assert timers["experiment.compact-routing"]["count"] == 1
    assert record.metrics["spans"][0]["name"] == "experiment.compact-routing"
    totals = obs.merge_snapshots([record.metrics])
    assert totals["timers"] == timers
