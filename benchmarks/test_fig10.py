"""Bench: Fig. 10 — displacement delay from the dominant location."""

from conftest import run_once

from repro.experiments import exp_fig10


def test_fig10(benchmark, world):
    result = run_once(benchmark, exp_fig10.run, world)
    print(exp_fig10.format_result(result))
    # iPlane answers only a small fraction of pairs (paper: ~5%).
    assert 0.01 <= result.answer_rate() <= 0.20
    # Median one-way delay in the tens of milliseconds (paper: ~50 ms).
    assert 20.0 <= result.median_delay() <= 90.0
    # Users wander two or more ASes from home (paper: physical median 2).
    assert result.median_physical_hops() >= 2.0
    # Policy paths are never shorter than the physical lower bound.
    assert result.median_predicted_hops() >= result.median_physical_hops() - 1e-9
