"""Bench: the columnar data plane vs the REPRO_SCALAR oracle.

Times the vectorized device and content update-rate evaluations under
the benchmark timer, then runs the identical workload through the
scalar per-event path and asserts bit-identical reports — the parity
contract — plus the speedup the columnar refactor exists for. Route
caches are warmed before either measurement so both paths time the
evaluation itself, not BGP route computation. Speedups are recorded
through the existing obs metrics plumbing (``bench.columnar.*``).
"""

import os
import time

from conftest import run_once

from repro import obs
from repro.core import (
    ContentUpdateCostEvaluator,
    DeviceUpdateCostEvaluator,
    ForwardingStrategy,
    per_day_update_rates,
)
from repro.workload import SCALAR_ENV


def _scalar(func, *args):
    """Run ``func`` under REPRO_SCALAR=1, returning (result, seconds)."""
    previous = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1"
    try:
        start = time.perf_counter()
        result = func(*args)
        return result, time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ[SCALAR_ENV]
        else:
            os.environ[SCALAR_ENV] = previous


def test_device_columnar_vs_scalar(benchmark, world, scale):
    columns = world.device_event_columns
    evaluator = DeviceUpdateCostEvaluator(world.routeviews, world.oracle)
    evaluator.evaluate(columns)  # warm the per-prefix route caches

    start = time.perf_counter()
    vector = run_once(benchmark, evaluator.evaluate, columns)
    vector_s = time.perf_counter() - start
    scalar, scalar_s = _scalar(evaluator.evaluate, columns)

    assert vector.rates == scalar.rates
    assert vector.updates == scalar.updates
    assert vector.num_events == scalar.num_events

    speedup = scalar_s / max(vector_s, 1e-9)
    obs.gauge("bench.columnar.device.vector_s", vector_s)
    obs.gauge("bench.columnar.device.scalar_s", scalar_s)
    obs.gauge("bench.columnar.device.speedup", speedup)
    print(
        f"device update rates [{scale.label}]: {len(columns)} events, "
        f"vector {vector_s:.3f}s vs scalar {scalar_s:.3f}s "
        f"({speedup:.1f}x)"
    )
    if scale.label == "paper":
        assert speedup >= 3.0, (
            f"columnar device evaluation only {speedup:.1f}x faster "
            f"than the scalar oracle at paper scale"
        )


def test_per_day_columnar_vs_scalar(benchmark, world, scale):
    columns = world.device_event_columns
    evaluator = DeviceUpdateCostEvaluator(world.routeviews, world.oracle)
    evaluator.evaluate(columns)  # warm caches

    vector = run_once(benchmark, per_day_update_rates, evaluator, columns)
    scalar, scalar_s = _scalar(per_day_update_rates, evaluator, columns)
    assert vector == scalar
    obs.gauge("bench.columnar.per_day.scalar_s", scalar_s)
    print(
        f"per-day update rates [{scale.label}]: "
        f"{len(vector)} routers x {len(columns.days())} days, parity ok"
    )


def test_content_columnar_vs_scalar(benchmark, world, scale):
    meas = world.popular_measurement
    evaluator = ContentUpdateCostEvaluator(world.routeviews, world.oracle)
    strategy = ForwardingStrategy.CONTROLLED_FLOODING
    evaluator.evaluate(meas, strategy)  # warm the per-address caches

    start = time.perf_counter()
    vector = run_once(benchmark, evaluator.evaluate, meas, strategy)
    vector_s = time.perf_counter() - start
    scalar, scalar_s = _scalar(evaluator.evaluate, meas, strategy)

    assert vector.rates == scalar.rates
    assert vector.updates == scalar.updates
    assert vector.num_events == scalar.num_events

    speedup = scalar_s / max(vector_s, 1e-9)
    obs.gauge("bench.columnar.content.vector_s", vector_s)
    obs.gauge("bench.columnar.content.scalar_s", scalar_s)
    obs.gauge("bench.columnar.content.speedup", speedup)
    print(
        f"content update rates [{scale.label}]: "
        f"{vector.num_events} events, vector {vector_s:.3f}s vs "
        f"scalar {scalar_s:.3f}s ({speedup:.1f}x)"
    )
