"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.context.World` is built per session at
the scale selected by ``REPRO_SCALE`` (default: the paper's parameters)
and shared across benches, so each bench times its own experiment, not
the substrate construction.
"""

import pytest

from repro.experiments import World, active_scale


@pytest.fixture(scope="session")
def world():
    return World(active_scale())


@pytest.fixture(scope="session")
def scale():
    return active_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiments are deterministic end-to-end computations (seconds to
    a minute each), so a single timed round is the right measurement.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
