"""Bench: §6.2 device FIB-size measurement."""

from conftest import run_once

from repro.experiments import exp_fib_size


def test_fib_size(benchmark, world):
    result = run_once(benchmark, exp_fib_size.run, world)
    print(exp_fib_size.format_result(result))
    # The paper's envelope says ~1% of devices displaced at a typical
    # router; our levels scale with our (higher) per-event rates but
    # stay in the low-percent regime and follow the Fig. 8 ordering.
    assert 0.005 <= result.median_fraction() <= 0.10
    assert result.max_fraction() <= 0.25
    fractions = result.displaced_fraction
    assert fractions["Mauritius"] <= 0.003
    assert fractions["Tokyo"] <= 0.03
    oregon_max = max(fractions[f"Oregon-{i}"] for i in range(1, 5))
    assert oregon_max == result.max_fraction()
    assert fractions["Georgia"] < oregon_max
