"""Bench: §2.1 compact-routing frontier."""

from conftest import run_once

from repro.experiments import exp_compact_routing


def test_compact_routing(benchmark):
    result = run_once(benchmark, exp_compact_routing.run, n=60)
    print(exp_compact_routing.format_result(result))
    points = result.points
    # The Thorup-Zwick guarantee at every density.
    for p in points:
        assert p.max_multiplicative_stretch <= 3.0 + 1e-9
    # Full landmarking = shortest paths with Θ(N) entries.
    full = points[-1]
    assert full.mean_multiplicative_stretch == 1.0
    assert full.max_table_size == result.topology_size
    # Sparse landmarks buy much smaller tables at the price of stretch.
    sparse = points[0]
    assert sparse.mean_table_size < full.mean_table_size * 0.6
    assert sparse.mean_multiplicative_stretch > 1.1
    # Stretch falls as landmark density rises.
    stretches = [p.mean_multiplicative_stretch for p in points]
    assert stretches[-1] <= stretches[0]
