"""Bench: Fig. 9 — time spent at the dominant location."""

from conftest import run_once

from repro.experiments import exp_fig9


def test_fig9(benchmark, world, scale):
    result = run_once(benchmark, exp_fig9.run, world)
    print(exp_fig9.format_result(result))
    loose = scale.label == "small"
    # A substantial fraction of user-days are dominated by one location.
    frac_ip = result.fraction_above("ip", 0.70)
    frac_as = result.fraction_above("asn", 0.85)
    assert (0.20 if loose else 0.30) <= frac_ip <= 0.60
    assert (0.30 if loose else 0.35) <= frac_as <= 0.65
    # §6.2: users typically spend ~30% of the day away from the
    # dominant IP address.
    away = result.median_away_from_dominant_ip()
    assert 0.15 <= away <= (0.50 if loose else 0.45)
    # Dominance ordering: AS >= prefix >= IP on every user-day.
    for i_val, p_val, a_val in zip(result.ip, result.prefix, result.asn):
        assert a_val >= p_val - 1e-9 >= i_val - 2e-9
