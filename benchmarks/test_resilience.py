"""Bench: the resilience layer — what robustness costs when idle.

Pins the overhead acceptance properties of the resilience machinery:

* the checksummed cache container adds bounded overhead to store/load
  round trips (integrity is not allowed to dominate the cache's win);
* a run with deadlines armed (routed through the pooled watchdog path)
  completes and stays in the same cost regime as the plain path;
* a chaos run (worker kills + cache corruption) still converges to the
  same digests as a clean run — the recovery paths pay for themselves.
"""

import shutil
import tempfile

from conftest import run_once

from repro.engine import ArtifactCache, CHAOS_ENV, run_experiments
from repro.experiments import active_scale

#: Standalone experiments cheap enough to re-run under chaos.
NAMES = ["table1", "compact-routing", "envelope"]


def test_checksummed_cache_round_trip(benchmark):
    root = tempfile.mkdtemp(prefix="repro-bench-integrity-")
    try:
        cache = ArtifactCache(root)
        payload = {"rows": [[i, i * 1.5, str(i)] for i in range(20000)]}
        key = cache.key("bench-artifact", n=len(payload["rows"]))
        cache.store(key, payload)

        def round_trip():
            cache.store(key, payload)
            return cache.load(key)

        loaded = run_once(benchmark, round_trip)
        assert loaded == payload  # checksum verified on every read
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_deadline_armed_run_completes(benchmark):
    scale = active_scale()
    # A deadline no experiment approaches: measures the watchdog path's
    # overhead (pool routing + polling), not timeouts.
    records = run_once(
        benchmark, run_experiments, NAMES, scale, jobs=2,
        timeout_s=3600,
    )
    assert all(r.ok for r in records), [r.error for r in records]
    assert all(r.attempts == 1 for r in records)


def test_chaos_run_converges_to_clean_digests(benchmark, monkeypatch):
    scale = active_scale()
    clean = run_experiments(NAMES, scale)
    monkeypatch.setenv(CHAOS_ENV, "kill:0.3,corrupt:0.3,seed:4")
    chaotic = run_once(
        benchmark, run_experiments, NAMES, scale, jobs=2,
        timeout_s=3600,
    )
    assert all(r.ok for r in chaotic), [(r.name, r.error) for r in chaotic]
    for clean_r, chaos_r in zip(clean, chaotic):
        assert clean_r.series_digests == chaos_r.series_digests
