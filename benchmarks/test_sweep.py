"""Bench: the sweep engine — grid fan-out and warm-resweep cost.

Pins the sweep's two economic properties:

* a pooled sweep over a small grid completes with deterministic rows
  (the fan-out machinery itself is cheap relative to the cells);
* re-running the same sweep against a warm artifact cache is close to
  free — cells share World artifacts keyed by explicit parameters, so
  the second pass is all cache hits.
"""

import shutil
import tempfile

from conftest import run_once

from repro.engine import ArtifactCache
from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec.from_dict({
    "name": "bench",
    "experiments": ["table1", "compact-routing", "envelope"],
    "base": {"scale": "small"},
    "axes": {"seed": [1, 2]},
    "replications": 1,
})


def test_pooled_sweep_completes_deterministically(benchmark):
    root = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    try:
        baseline = run_sweep(SPEC, jobs=1,
                             cache=ArtifactCache(root, max_bytes=None))
        result = run_once(
            benchmark, run_sweep, SPEC, jobs=2,
            cache=ArtifactCache(root, max_bytes=None),
        )
        assert not result.failed
        assert result.to_csv() == baseline.to_csv()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_warm_resweep_is_cache_driven(benchmark):
    root = tempfile.mkdtemp(prefix="repro-bench-resweep-")
    try:
        cache = ArtifactCache(root, max_bytes=None)
        cold = run_sweep(SPEC, cache=cache)
        warm = run_once(benchmark, run_sweep, SPEC, cache=cache)
        assert not warm.failed
        assert warm.to_csv() == cold.to_csv()
    finally:
        shutil.rmtree(root, ignore_errors=True)
