"""Bench: Fig. 8 — device mobility update rates at RouteViews routers."""

from conftest import run_once

from repro.experiments import exp_fig8


def test_fig8(benchmark, world):
    result = run_once(benchmark, exp_fig8.run, world)
    print(exp_fig8.format_result(result))
    report = result.report
    # Shape: Oregon collectors highest (paper max ~14%), median routers
    # several times lower (paper ~3%), peripheral routers ~0.
    assert 0.08 <= report.max_rate() <= 0.25
    assert 0.01 <= report.median_rate() <= 0.12
    oregon_rates = [report.rate_of(f"Oregon-{i}") for i in range(1, 5)]
    assert max(oregon_rates) == report.max_rate()
    # Georgia markedly below the Oregon routers (§6.2.2's explanation:
    # much lower next-hop degree).
    assert report.rate_of("Georgia") < max(oregon_rates) * 0.7
    assert result.next_hop_degrees["Georgia"] < (
        result.next_hop_degrees["Oregon-1"] / 3
    )
    # Mauritius and Tokyo "experience hardly any updates".
    assert report.rate_of("Mauritius") <= 0.005
    assert report.rate_of("Tokyo") <= 0.04
