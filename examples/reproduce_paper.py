#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Prints, for each artifact of the evaluation section, the same
rows/series the paper reports next to the paper's headline numbers.

Run:  python examples/reproduce_paper.py            # paper scale (~minutes)
      REPRO_SCALE=small python examples/reproduce_paper.py   # seconds
"""

import time

from repro.experiments import (
    World,
    active_scale,
    exp_ablation_caching,
    exp_ablation_hybrid,
    exp_ablation_multihoming,
    exp_ablation_outage,
    exp_ablation_strategy_layer,
    exp_ablation_tradeoff,
    exp_ablation_union,
    exp_fib_size,
    exp_intradomain,
    exp_perturbation,
    exp_policy_sensitivity,
    exp_envelope,
    exp_fig6,
    exp_fig7,
    exp_fig8,
    exp_fig8_sensitivity,
    exp_fig9,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_table1,
)


def main() -> None:
    scale = active_scale()
    print(f"Scale: {scale.label} ({scale.num_users} users, "
          f"{scale.device_days} device days, {scale.content_days} content days)")
    start = time.time()
    world = World(scale)

    print(exp_table1.format_result(exp_table1.run()))
    print(exp_fig6.format_result(exp_fig6.run(world)))
    print(exp_fig7.format_result(exp_fig7.run(world)))
    print(exp_fig8.format_result(exp_fig8.run(world)))
    print(exp_fig8_sensitivity.format_result(exp_fig8_sensitivity.run(world)))
    print(exp_fig9.format_result(exp_fig9.run(world)))
    print(exp_fig10.format_result(exp_fig10.run(world)))
    print(exp_fig11.format_result(exp_fig11.run(world)))
    print(exp_fig12.format_result(exp_fig12.run(world)))
    fig8 = exp_fig8.run(world)
    print(
        exp_envelope.format_result(
            exp_envelope.run(
                measured_device_probability=fig8.report.median_rate()
            )
        )
    )
    print(exp_ablation_union.format_result(exp_ablation_union.run(world)))
    print(exp_ablation_tradeoff.format_result(exp_ablation_tradeoff.run(world)))
    print(exp_ablation_hybrid.format_result(exp_ablation_hybrid.run()))
    print(exp_ablation_outage.format_result(exp_ablation_outage.run(world)))
    print(exp_ablation_multihoming.format_result(
        exp_ablation_multihoming.run(world)))
    print(exp_ablation_strategy_layer.format_result(
        exp_ablation_strategy_layer.run()))
    print(exp_ablation_caching.format_result(exp_ablation_caching.run()))
    print(exp_perturbation.format_result(exp_perturbation.run(world)))
    print(exp_fib_size.format_result(exp_fib_size.run(world)))
    print(exp_policy_sensitivity.format_result(
        exp_policy_sensitivity.run(world)))
    print(exp_intradomain.format_result(exp_intradomain.run()))
    print(f"\nTotal: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
