#!/usr/bin/env python3
"""Mobility outage study: what happens *while* the network catches up.

The paper's metrics (update cost, stretch, table size) are steady-state;
this walkthrough exercises the two transient extensions:

1. name-based routing convergence — watch a packet blackhole and then
   succeed as the routing update spreads hop-by-hop;
2. resolution staleness — sweep the binding TTL for a real synthetic
   NomadLog user and watch the freshness/latency trade-off.

Run:  python examples/mobility_outage_study.py
"""

import random

from repro.forwarding import ConvergenceSimulator
from repro.mobility import MobilityWorkloadConfig, generate_workload
from repro.resolution import simulate_ttl
from repro.topology import binary_tree_topology, generate_as_topology


def main() -> None:
    print("1. Name-based routing convergence on a 31-router binary tree")
    graph = binary_tree_topology(31)
    simulator = ConvergenceSimulator(graph, per_hop_delay=1.0)
    old, new = 16, 31  # two leaves on opposite sides of the root
    outage = simulator.simulate_event(old, new)
    print(f"   endpoint moves router {old} -> {new}; "
          f"network converges after {outage.convergence_time:.0f} hop-delays")
    source = 17  # a sibling of the old attachment
    print(f"   probing from router {source} while the update spreads:")
    t = 0.0
    while t <= outage.convergence_time:
        ok = simulator.deliver(source, t, old, new)
        print(f"     t={t:3.0f}: {'delivered' if ok else 'LOST (stale route)'}")
        t += 1.0
    print(f"   mean outage across sources: {outage.mean_outage():.2f} "
          f"hop-delays, worst {outage.max_outage():.2f}")
    print("   (indirection routing: constant ~2 hop-delays — one home-agent "
          "registration — regardless of topology)\n")

    print("2. Resolution staleness: TTL sweep for a busy NomadLog user")
    topology = generate_as_topology()
    workload = generate_workload(
        topology, MobilityWorkloadConfig(num_users=60, num_days=5, seed=11)
    )
    by_user = {}
    for event in workload.all_transitions():
        by_user.setdefault(event.user_id, []).append(event)
    busiest = max(by_user, key=lambda u: len(by_user[u]))
    events = by_user[busiest]
    print(f"   user {busiest}: {len(events)} mobility events over 5 days")
    points = simulate_ttl(
        events, ttls_s=[0.0, 60.0, 600.0, 3600.0], connections_per_hour=4.0
    )
    print(f"   {'TTL':>7s} {'stale failures':>15s} {'cache hits':>11s} "
          f"{'mean lookup':>12s}")
    for p in points:
        print(
            f"   {p.ttl_s:6.0f}s {p.failure_rate * 100:14.2f}% "
            f"{p.cache_hit_rate * 100:10.0f}% {p.mean_lookup_ms:10.1f}ms"
        )
    print(
        "\n   Short TTLs keep bindings fresh but pay a resolver round trip "
        "per connection; long TTLs amortize lookups but hand out stale "
        "addresses to correspondents — the operating point of any "
        "'addressing-assisted' augmentation."
    )


if __name__ == "__main__":
    main()
