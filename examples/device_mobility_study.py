#!/usr/bin/env python3
"""Device mobility study: from NomadLog-style logs to router update cost.

Walks the paper's full device pipeline on a small scale:

1. generate a synthetic Internet and a NomadLog-calibrated population;
2. run the NomadLog app simulator (connectivity events, batched
   uploads, short-user filtering) and show a few database rows;
3. summarise per-user mobility (Figs. 6/7/9 statistics);
4. evaluate the update cost of pure name-based routing at the twelve
   RouteViews routers (Fig. 8) and compare the most and least affected.

Run:  python examples/device_mobility_study.py
"""

from repro.core import DeviceUpdateCostEvaluator
from repro.measurement import build_routeviews_routers, collect_logs
from repro.mobility import (
    MobilityWorkloadConfig,
    generate_workload,
    percentile,
    user_averages,
)
from repro.routing import RoutingOracle
from repro.topology import generate_as_topology


def main() -> None:
    print("1. Building the synthetic Internet and mobility workload...")
    topology = generate_as_topology()
    workload = generate_workload(
        topology, MobilityWorkloadConfig(num_users=120, num_days=5, seed=7)
    )
    print(
        f"   {len(topology)} ASes; {workload.num_users()} users x 5 days; "
        f"{len(workload.all_transitions())} mobility events.\n"
    )

    print("2. Running the NomadLog app pipeline (§4)...")
    database = collect_logs(workload, seed=7)
    device = database.devices()[0]
    rows = database.rows_for(device)[:4]
    print(f"   {len(database.devices())} devices uploaded logs; sample rows:")
    print("   device_id        | hours | ip             | net")
    for row in rows:
        print(
            f"   {row.device_id} | {row.time_hours:5.1f} | "
            f"{row.ip_addr:14s} | {row.net_type}"
        )
    print()

    print("3. Per-user mobility statistics (Figs. 6-7)...")
    averages = user_averages(workload.user_days)
    ips = [u.avg_distinct_ips for u in averages]
    ases = [u.avg_distinct_ases for u in averages]
    print(
        f"   median distinct IPs/day {percentile(ips, 0.5):.1f}, "
        f"ASes/day {percentile(ases, 0.5):.1f}; "
        f"{sum(1 for v in ips if v > 10) / len(ips) * 100:.0f}% of users "
        f"exceed 10 IPs/day.\n"
    )

    print("4. Update cost of pure name-based routing (Fig. 8)...")
    oracle = RoutingOracle(topology)
    routers = build_routeviews_routers(topology)
    report = DeviceUpdateCostEvaluator(routers, oracle).evaluate(
        workload.all_transitions()
    )
    for name, rate in sorted(report.rates.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(rate * 200)
        print(f"   {name:14s} {rate * 100:6.2f}% {bar}")
    print(
        f"\n   The Oregon collectors see up to "
        f"{report.max_rate() * 100:.1f}% of all mobility events — the "
        "paper's argument that pure name-based routing cannot absorb "
        "device mobility, while a DNS-style resolver pays exactly one "
        "update per event."
    )


if __name__ == "__main__":
    main()
