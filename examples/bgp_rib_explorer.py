#!/usr/bin/env python3
"""BGP RIB explorer: inspect the routing substrate directly.

Shows the machinery underneath the evaluation (§3.2, §6.2.1):

1. policy route propagation (valley-free / Gao-Rexford) on the
   synthetic Internet;
2. a RouteViews-style RIB dump for one vantage router, in the paper's
   row format (prefix, next_hop, local_pref, metric, AS path);
3. the §6.2.1 decision process ranking the candidate routes;
4. Gao-style relationship inference re-deriving customer/peer/provider
   labels from observed AS paths, compared against ground truth.

Run:  python examples/bgp_rib_explorer.py
"""

from repro.measurement import build_routeviews_routers, rib_rows
from repro.routing import (
    RoutingOracle,
    infer_relationships,
    relationship_for,
)
from repro.topology import Tier, generate_as_topology


def main() -> None:
    topology = generate_as_topology()
    oracle = RoutingOracle(topology)
    router = build_routeviews_routers(topology)[0]  # Oregon-1
    print(
        f"Vantage router {router.name}: {router.next_hop_degree()} BGP "
        f"neighbors in {router.host_region}.\n"
    )

    # 1-2. A RIB dump for a handful of prefixes.
    prefixes = [p for p, _ in list(topology.all_prefixes())[:40:8]]
    print("RIB dump (paper §6.2.1 row format):")
    print(f"{'ip_prefix':18s} {'next_hop':>8s} {'lpref':>5s} {'med':>3s}  as_path")
    for prefix_text, next_hop, local_pref, med, as_path in rib_rows(
        router, oracle, prefixes
    ):
        print(f"{prefix_text:18s} {next_hop:8d} {local_pref:5d} {med:3d}  {as_path}")

    # 3. Rank the candidates for one prefix.
    target = prefixes[0]
    ranked = router.candidate_routes(oracle, target)
    from repro.routing import rank_routes

    print(f"\nDecision process for {target}:")
    for i, route in enumerate(rank_routes(ranked), 1):
        marker = "<- FIB entry" if i == 1 else ""
        print(
            f"  {i}. via AS{route.next_hop} ({route.relationship.value}, "
            f"{route.path_length()} hops, med {route.med}) {marker}"
        )

    # 4. Relationship inference from observed paths.
    print("\nGao-style relationship inference over observed AS paths:")
    stubs = [a for a, n in topology.ases.items() if n.tier is Tier.STUB]
    paths = []
    for dest in stubs[::6]:
        for best in oracle.routes_to(dest).values():
            if len(best.path) >= 2:
                paths.append(best.path)
    labels = infer_relationships(paths, peer_degree_ratio=1.6)
    checked = correct = 0
    for asn, node in topology.ases.items():
        for provider in node.providers:
            edge = frozenset((asn, provider))
            if edge not in labels:
                continue
            checked += 1
            from repro.topology import Relationship

            if relationship_for(labels, asn, provider) is Relationship.PROVIDER:
                correct += 1
    print(
        f"  {len(paths)} paths observed; {checked} transit edges checked; "
        f"{correct / checked * 100:.1f}% inferred with the correct "
        "customer->provider direction."
    )


if __name__ == "__main__":
    main()
