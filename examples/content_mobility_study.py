#!/usr/bin/env python3
"""Content mobility study: CDNs, forwarding strategies, and FIB size.

Walks the paper's §7 content pipeline on a small scale:

1. generate a popular/unpopular domain universe and assign hosting
   (origin farms vs CDN edge clusters);
2. measure hourly ``Addrs(d, t)`` from a PlanetLab-style vantage fleet
   and show one CDN-delegated name's churning address set;
3. evaluate best-port vs controlled-flooding update cost at the
   RouteViews routers (Fig. 11b/c);
4. compute FIB aggregateability under longest-prefix matching (Fig. 12).

Run:  python examples/content_mobility_study.py
"""

from repro.content import (
    CDNHosting,
    DomainUniverseConfig,
    assign_hosting,
    generate_domain_universe,
)
from repro.core import (
    ContentUpdateCostEvaluator,
    ForwardingStrategy,
    router_aggregateability,
)
from repro.measurement import (
    MeasurementConfig,
    MeasurementController,
    build_routeviews_routers,
)
from repro.mobility import percentile
from repro.routing import RoutingOracle
from repro.topology import generate_as_topology


def main() -> None:
    print("1. Building the content universe and hosting...")
    topology = generate_as_topology()
    universe = generate_domain_universe(
        DomainUniverseConfig(
            num_popular=80, num_unpopular=40, popular_total_names=900, seed=3
        )
    )
    hosting = assign_hosting(universe, topology)
    cdn_names = [
        name
        for domain in universe.popular
        for name in domain.all_names()
        if isinstance(hosting.model_for(name), CDNHosting)
    ]
    print(
        f"   {len(universe.popular_names())} popular names "
        f"({len(cdn_names)} CDN-delegated), "
        f"{len(universe.unpopular_names())} unpopular names.\n"
    )

    print("2. Measuring hourly address sets from 74 vantage points...")
    controller = MeasurementController(
        topology, hosting, config=MeasurementConfig(days=3, seed=3)
    )
    measurement = controller.measure_universe(universe, popular=True)
    sample = cdn_names[0]
    timeline = measurement.timeline(sample)
    print(f"   {sample.to_domain()} (CDN-delegated):")
    for hour in (0, 12, 24):
        addrs = sorted(str(a) for a in timeline.set_at(hour))
        shown = ", ".join(addrs[:4]) + (", ..." if len(addrs) > 4 else "")
        print(f"     hour {hour:2d}: {len(addrs):2d} addrs [{shown}]")
    daily = list(measurement.daily_event_counts().values())
    print(
        f"   mobility events/day across names: median "
        f"{percentile(daily, 0.5):.1f}, max {max(daily):.0f} (Fig. 11a).\n"
    )

    print("3. Update cost: best-port vs controlled flooding (Fig. 11b)...")
    oracle = RoutingOracle(topology)
    routers = build_routeviews_routers(topology)
    evaluator = ContentUpdateCostEvaluator(routers, oracle)
    flooding = evaluator.evaluate(
        measurement, ForwardingStrategy.CONTROLLED_FLOODING
    )
    best = evaluator.evaluate(measurement, ForwardingStrategy.BEST_PORT)
    print(
        f"   flooding: max {flooding.max_rate() * 100:.1f}% of events "
        f"update some router; best-port: max "
        f"{best.max_rate() * 100:.1f}% — the best port rarely changes "
        "because the closest CDN cluster is stable.\n"
    )

    print("4. FIB aggregateability under LPM (Fig. 12)...")
    for router in (routers[0], routers[9]):  # Oregon-1 and Mauritius
        ratio, complete, lpm = router_aggregateability(
            router, oracle, measurement
        )
        print(
            f"   {router.name:10s}: {len(complete)} entries -> {len(lpm)} "
            f"after subsumption ({ratio:.1f}x)"
        )
    print(
        "\n   Content names aggregate because subdomains usually live on "
        "their apex's infrastructure; device identifiers would not."
    )


if __name__ == "__main__":
    main()
