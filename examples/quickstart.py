#!/usr/bin/env python3
"""Quickstart: compare the three location-independence architectures.

Builds a small synthetic Internet, simulates one day of device
mobility, and reports what each purist architecture (indirection
routing, name resolution, name-based routing) pays for it — the
paper's §5 trade-off on a topology you can print.

Run:  python examples/quickstart.py
"""

import random

from repro.core import (
    IndirectionRouting,
    NameBasedRouting,
    NameResolution,
    closed_form_row,
)
from repro.topology import chain_topology


def main() -> None:
    n = 16
    graph = chain_topology(n)
    rng = random.Random(42)
    print(f"Topology: a chain of {n} routers (Fig. 5 of the paper).\n")

    architectures = [
        IndirectionRouting(graph, rng=random.Random(1)),
        NameResolution(graph),
        NameBasedRouting(graph),
    ]

    # A device hops between random routers 500 times; each architecture
    # accounts its own update cost and path stretch.
    steps = 500
    print(f"Simulating {steps} random mobility events...\n")
    print(f"{'architecture':18s} {'update fraction':>16s} {'path stretch':>13s} "
          f"{'routers w/ state':>17s}")
    for arch in architectures:
        metrics = arch.expected_metrics(steps, random.Random(7))
        print(
            f"{arch.name:18s} {metrics.update_fraction:16.4f} "
            f"{metrics.path_stretch:13.3f} {metrics.routers_with_state:17d}"
        )

    exact = closed_form_row("chain", n)
    print(
        f"\nAnalytic (§5, Table 1) for the chain: indirection stretch "
        f"{exact.indirection_stretch:.2f} (~n/3), name-based update cost "
        f"{exact.name_based_update_cost:.3f} (~1/3)."
    )
    print(
        "\nThe trade-off in one line: indirection updates one agent but "
        "detours packets; name-based routing never detours but touches "
        "a third of the chain's routers on every move; name resolution "
        "pays neither — at the price of a resolver lookup on every "
        "connection setup."
    )


if __name__ == "__main__":
    main()
