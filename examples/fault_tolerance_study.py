#!/usr/bin/env python3
"""Fault-tolerance study: the three architectures under failure.

The paper compares the purist architectures in a fault-free world; §8
notes that failure behaviour (convergence delay, outage windows) is
exactly what its empirical methodology could not measure. This
walkthrough drives the `repro.faults` subsystem by hand:

1. build a fault schedule (scripted crash + Poisson link failures);
2. watch a retrying resolution client fail over between replicas and
   drop to degraded cache serves when every replica is down;
3. watch indirection routing lose its home agent, then fail over;
4. watch a lossy name-based update flood converge under retransmits;
5. run all three under one shared schedule and compare degradation.

Run:  python examples/fault_tolerance_study.py
"""

import random

from repro.core import FaultToleranceEvaluator, MobilityTimeline
from repro.faults import (
    HOME_AGENT,
    LINK,
    REPLICA,
    FaultEvent,
    FaultSchedule,
    MessageLossModel,
    RetryPolicy,
)
from repro.forwarding import ConvergenceSimulator
from repro.resolution import NameResolutionService, RetryingResolver
from repro.topology import chain_topology


def main() -> None:
    print("1. A fault schedule is data: scripted events + generators")
    rng = random.Random(42)
    schedule = FaultSchedule(
        [
            FaultEvent(start=10.0, kind=REPLICA, target="us-east",
                       duration=25.0),
            FaultEvent(start=20.0, kind=HOME_AGENT, target=8, duration=30.0),
        ]
    ).merge(
        FaultSchedule.poisson(
            LINK, [(3, 4), (7, 8)], rate=1.0 / 50.0, horizon=120.0,
            duration=6.0, rng=rng,
        )
    )
    for event in schedule.events:
        print(f"   t={event.start:6.1f}s  {event.kind:<10s} "
              f"{event.target!r} down for {event.duration:.1f}s")
    print(f"   us-east downtime over [0, 60): "
          f"{schedule.downtime(REPLICA, 'us-east', 0.0, 60.0):.0f}s\n")

    print("2. Resolution: retry, failover, degraded cache serves")
    service = NameResolutionService(
        {"us-east": {"us": 12.0}, "eu": {"us": 55.0}},
        fault_schedule=schedule,
    )
    retry = RetryPolicy(initial_timeout=0.1, backoff_factor=2.0,
                        max_timeout=1.0, max_attempts=4)
    resolver = RetryingResolver(service, "us", retry,
                                rng=random.Random(1), ttl_s=0.0)
    service.update("endpoint", [5], now=0.0)
    for t in (5.0, 15.0, 30.0, 40.0):
        outcome = resolver.resolve("endpoint", t)
        state = "resolved" if outcome.resolved else "FAILED"
        extra = " (degraded cache serve)" if outcome.degraded else ""
        print(f"   t={t:4.0f}s: {state}{extra}, "
              f"{outcome.attempts} attempt(s), "
              f"{outcome.failovers} failover(s), "
              f"{outcome.total_latency_ms:.0f}ms")
    print()

    print("3. Indirection: home-agent crash at t=20 for 30s, backup at 12")
    graph = chain_topology(15)
    evaluator = FaultToleranceEvaluator(graph, schedule, horizon=60.0,
                                        probe_step=1.0)
    timeline = MobilityTimeline(initial=5, moves=((25.0, 11),))
    for label, backup in (("no backup", None), ("backup + 5s failover", 12)):
        report = evaluator.evaluate_indirection(
            timeline, correspondent=1, primary_agent=8,
            backup_agent=backup, failover_delay=5.0,
        )
        print(f"   {label:<22s} availability "
              f"{report.availability * 100:5.1f}%, worst outage "
              f"{report.max_outage():.0f}s")
    print()

    print("4. Name-based: lossy update flood with retransmit + backoff")
    simulator = ConvergenceSimulator(graph, per_hop_delay=1.0)
    for loss_rate in (0.0, 0.3):
        result = simulator.simulate_event_under_faults(
            5, 11, random.Random(7), loss=MessageLossModel(loss_rate)
        )
        print(f"   loss {loss_rate * 100:3.0f}%: converged after "
              f"{result.convergence_time:5.1f} hop-delays, "
              f"{result.retransmissions} retransmissions")
    print()

    print("5. All three under the one shared schedule")
    reports = evaluator.evaluate_all(
        timeline, correspondent=1, primary_agent=8,
        replica_latency_ms={"us-east": {"us": 12.0}, "eu": {"us": 55.0}},
        retry=retry, backup_agent=12, failover_delay=5.0,
        loss=MessageLossModel(0.2), ttl_s=0.0,
    )
    for name, report in reports.items():
        print(f"   {name:<16s} availability "
              f"{report.availability * 100:5.1f}%, worst outage "
              f"{report.max_outage():5.1f}, stale "
              f"{report.stale_fraction * 100:4.1f}%")
    print(
        "\n   Resolution degrades gracefully (retry + failover + degraded "
        "serves); indirection fails hard until its backup takes over; "
        "name-based pays convergence time that stretches with loss — "
        "the §8 discussion, measured."
    )


if __name__ == "__main__":
    main()
